package cbtc

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"

	"cbtc/internal/codec"
	"cbtc/internal/core"
	"cbtc/internal/graph"
	"cbtc/internal/spatial"
)

// Checkpoint/restore errors. The codec-level sentinels are re-exported
// so callers can classify failures with errors.Is without reaching into
// the internal package.
var (
	// ErrConfigMismatch reports a checkpoint produced under a different
	// engine configuration than the one restoring it. A checkpoint is only
	// meaningful under the exact protocol parameters (α, radio model,
	// optimization stack, tag quantization) that produced it — restoring
	// under anything else would silently change what the serialized fixed
	// point means, so it is refused instead.
	ErrConfigMismatch = errors.New("cbtc: checkpoint engine config mismatch")
	// ErrNotCheckpoint reports input that is not a cbtc checkpoint at all.
	ErrNotCheckpoint = codec.ErrBadMagic
	// ErrCheckpointVersion reports a checkpoint written by an
	// incompatible format version.
	ErrCheckpointVersion = codec.ErrVersion
	// ErrCheckpointKind reports a session checkpoint fed to RestoreFleet
	// or a fleet checkpoint fed to RestoreSession.
	ErrCheckpointKind = codec.ErrWrongKind
	// ErrCheckpointCorrupt reports a structurally invalid or truncated
	// checkpoint.
	ErrCheckpointCorrupt = codec.ErrCorrupt
)

// fingerprint captures the engine's full resolved protocol configuration
// in the checkpoint format's fixed-width shape.
func (e *Engine) fingerprint() codec.EngineConfig {
	fc := codec.EngineConfig{
		Alpha:             e.cfg.Alpha,
		MaxRadius:         e.cfg.MaxRadius,
		PathLossExponent:  e.cfg.PathLossExponent,
		ShrinkBack:        e.opts.ShrinkBack,
		AsymmetricRemoval: e.opts.AsymmetricRemoval,
		PairwiseRemoval:   e.opts.PairwiseRemoval,
		NonContributing:   e.opts.NonContributing,
		PairwisePolicy:    uint8(e.opts.PairwisePolicy),
		ScheduleFactor:    e.scheduleFactor,
		RefLoss:           e.model.RefLoss,
		BatteryCapacity:   e.batteryCap,
		BatteryDrain:      e.batteryDrain,
	}
	if e.shadowed {
		fc.RadioKind = 1
		fc.ShadowSigmaDB = e.shadowSigma
		fc.ShadowSeed = e.shadowSeed
	}
	return fc
}

// checkFingerprint verifies a checkpoint's embedded engine fingerprint
// against this engine's.
func (e *Engine) checkFingerprint(got codec.EngineConfig) error {
	if want := e.fingerprint(); got != want {
		return fmt.Errorf("%w: checkpoint %+v, engine %+v", ErrConfigMismatch, got, want)
	}
	return nil
}

// Checkpoint serializes the session's complete state to w in the
// versioned binary format of internal/codec. The session lock is held
// only while slice headers and copy-on-write graph clones are captured —
// O(n), no per-edge work — so concurrent events resume immediately while
// the actual encoding streams from the frozen snapshot. The restored
// session (Engine.RestoreSession) is edge-identical to this one,
// including the ground-truth G_R, and continues producing byte-identical
// results under the same event schedule.
func (s *Session) Checkpoint(w io.Writer) error {
	s.mu.Lock()
	st := s.exportLocked()
	s.mu.Unlock()
	return codec.EncodeSession(w, st)
}

// exportLocked freezes the session state for encoding. Positions and
// liveness are copied outright; the node and pruned rows copy only the
// outer slice headers (installed discovery rows are immutable — every
// repair installs freshly-built rows); the maintained graphs are
// copy-on-write clones. Everything else a live session holds (the
// reconfigurators, the spatial index, the snapshot cache) is derived
// state that restore rebuilds.
func (s *Session) exportLocked() *codec.SessionState {
	st := &codec.SessionState{
		Config: s.eng.fingerprint(),
		Pos:    append([]Point(nil), s.pos...),
		Alive:  append([]bool(nil), s.alive...),
		Nodes:  append([]core.NodeResult(nil), s.nodes...),
		Stats: codec.SessionCounters{
			Joins:        int64(s.stats.Joins),
			Leaves:       int64(s.stats.Leaves),
			Moves:        int64(s.stats.Moves),
			AngleChanges: int64(s.stats.AngleChanges),
			Regrows:      int64(s.stats.Regrows),
			Repairs:      int64(s.stats.Repairs),
		},
		Incremental: s.incremental,
	}
	if s.battery != nil {
		st.Battery = append([]float64(nil), s.battery...)
	}
	if s.incremental {
		st.Pruned = append([][]core.Discovery(nil), s.pruned...)
		st.Nalpha = s.nalpha.Clone()
		st.G = s.g.Clone()
		st.GR = s.gr.Clone()
	}
	return st
}

// RestoreSession rebuilds a Session from a checkpoint written by
// Session.Checkpoint. The checkpoint's engine fingerprint must match
// this engine exactly (ErrConfigMismatch otherwise); corrupt, truncated
// or alien input yields a typed error (ErrNotCheckpoint,
// ErrCheckpointVersion, ErrCheckpointKind, ErrCheckpointCorrupt), never
// a panic. The restored session is edge-identical to the checkpointed
// one — N_α, G and the ground-truth G_R — and evolves identically under
// the same events, at any worker count.
func (e *Engine) RestoreSession(r io.Reader) (*Session, error) {
	st, err := codec.DecodeSession(r)
	if err != nil {
		return nil, err
	}
	return e.sessionFromState(st, e.workers)
}

// sessionFromState rebuilds a live session around decoded state. The
// serialized vectors are adopted directly (the decoder built them fresh);
// the derived state — per-node reconfigurators, the spatial index — is
// reconstructed, which is exact: a reconfigurator's state is a pure
// function of its node's installed neighbor row, and the grid of the
// positions and liveness vector.
func (e *Engine) sessionFromState(st *codec.SessionState, workers int) (*Session, error) {
	if err := e.checkFingerprint(st.Config); err != nil {
		return nil, err
	}
	// The decoder ties the incremental section's presence to the flag;
	// here the flag must also agree with what the (already matched)
	// fingerprint implies, or the graphs a live session relies on would
	// be missing.
	if st.Incremental != !e.opts.PairwiseRemoval {
		return nil, fmt.Errorf("%w: incremental flag %v under pairwise-removal %v", ErrCheckpointCorrupt, st.Incremental, e.opts.PairwiseRemoval)
	}
	if (st.Battery != nil) != e.battery {
		return nil, fmt.Errorf("%w: battery vector present %v under battery model %v", ErrCheckpointCorrupt, st.Battery != nil, e.battery)
	}
	n := len(st.Pos)
	if st.Battery != nil && len(st.Battery) != n {
		return nil, fmt.Errorf("%w: battery vector holds %d nodes, session has %d", ErrCheckpointCorrupt, len(st.Battery), n)
	}
	s := &Session{
		eng:     e,
		workers: workers,
		pos:     st.Pos,
		alive:   st.Alive,
		nodes:   st.Nodes,
		recs:    make([]*core.Reconfigurator, n),
		idx:     spatial.New(st.Pos, e.prop.MaxLinkRadius()),
		stats: SessionStats{
			Joins:        int(st.Stats.Joins),
			Leaves:       int(st.Stats.Leaves),
			Moves:        int(st.Stats.Moves),
			AngleChanges: int(st.Stats.AngleChanges),
			Regrows:      int(st.Stats.Regrows),
			Repairs:      int(st.Stats.Repairs),
		},
		incremental: st.Incremental,
	}
	for id, alive := range st.Alive {
		if !alive {
			s.idx.Remove(id)
			continue
		}
		s.live++
		s.recs[id] = core.NewReconfigurator(e.cfg.Alpha, e.model, st.Nodes[id].Neighbors)
	}
	// The battery vector is adopted directly; the residual moments Observe
	// reports are folded fresh from it each read, so nothing else needs
	// reconstruction.
	s.battery = st.Battery
	if st.Incremental {
		s.pruned = st.Pruned
		s.nalpha = st.Nalpha
		s.g = st.G
		s.gr = st.GR
		// The O(changed) Observe state is derived, not serialized: the
		// component structure and the radius cache are pure functions of
		// the (exactly restored) graph and positions, so re-deriving them
		// keeps the checkpoint format stable and the restored Observe
		// byte-identical to the pre-checkpoint one.
		s.comps = graph.NewLiveComponents(s.g, s.alive)
		s.radius = make([]float64, n)
		for id, alive := range s.alive {
			if alive {
				s.radius[id] = graph.NodeRadius(s.g, s.pos, id)
			}
		}
	}
	return s, nil
}

// Checkpoint serializes the fleet's complete state to w: the base
// engine fingerprint, and per member its own fingerprint, kind, tick
// weight, RNG stream position, tick clock/target, event counter,
// statistics accumulators and full session state. The fleet lock is
// held only while the per-network snapshots are captured (slice
// headers, COW graph clones and ~20-byte RNG states); encoding streams
// off-lock, so a fleet driven tick-by-tick (TickEvents) keeps ticking
// while a checkpoint is written. A checkpoint may be taken at ragged
// per-member clocks — after a cancelled run, or under skewed external
// traffic — and restores to exactly that raggedness. The wall-clock
// scheduling telemetry (MemberSchedStats) is deliberately not captured:
// a restored fleet starts with fresh flow-rate estimates.
//
// Checkpoint refuses to run while any member is quarantined — a
// quarantined session may be mid-mutation and serializing it would
// launder a poisoned state into the durability chain — returning the
// *QuarantineError instead; readmit (Fleet.Readmit) the casualties
// first. Durability drivers pair this with a write-ahead event log, so
// refusing a checkpoint during quarantine loses nothing.
func (f *Fleet) Checkpoint(w io.Writer) error {
	f.mu.Lock()
	var casualties []*fleetNetwork
	for _, net := range f.nets {
		if net.quarantined() {
			casualties = append(casualties, net)
		}
	}
	if len(casualties) > 0 {
		f.mu.Unlock()
		return quarantineError(casualties)
	}
	st := &codec.FleetState{
		Config: f.eng.fingerprint(),
		Nets:   make([]codec.NetworkState, len(f.nets)),
	}
	var err error
	for i, net := range f.nets {
		var rngState []byte
		if rngState, err = net.src.MarshalBinary(); err != nil {
			break
		}
		net.sess.mu.Lock()
		ss := net.sess.exportLocked()
		net.sess.mu.Unlock()
		st.Nets[i] = codec.NetworkState{
			Config:     net.eng.fingerprint(),
			Kind:       uint8(net.kind),
			Weight:     int64(net.weight),
			RNG:        rngState,
			Done:       net.done.Load(),
			Target:     net.target.Load(),
			Events:     net.events,
			Degree:     net.series.Degree,
			Radius:     net.series.Radius,
			Components: net.series.Components,
			Energy:     net.series.Energy,
			Residual:   net.series.Residual,
			EnergyVar:  net.series.EnergyVar,
			Session:    *ss,
		}
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return codec.EncodeFleet(w, st)
}

// engineFromFingerprint rebuilds a member's derived engine from its
// checkpointed fingerprint. The rebuilt engine's own fingerprint must
// round-trip to the input exactly — anything else means the fingerprint
// encodes a configuration the option surface cannot express, which is
// corruption, not a restorable state.
func engineFromFingerprint(fc codec.EngineConfig, workers int) (*Engine, error) {
	if fc.NonContributing {
		// No public option path produces this flag; an honest checkpoint
		// can never carry it.
		return nil, fmt.Errorf("%w: member fingerprint requests unsupported non-contributing removal", ErrCheckpointCorrupt)
	}
	if fc.RadioKind > 1 {
		// The option surface only expresses the pure power law (0) and
		// log-distance shadowing (1).
		return nil, fmt.Errorf("%w: member fingerprint requests unknown radio kind %d", ErrCheckpointCorrupt, fc.RadioKind)
	}
	s := settings{
		cfg: Config{
			Alpha:             fc.Alpha,
			MaxRadius:         fc.MaxRadius,
			PathLossExponent:  fc.PathLossExponent,
			ShrinkBack:        fc.ShrinkBack,
			AsymmetricRemoval: fc.AsymmetricRemoval,
			PairwiseRemoval:   fc.PairwiseRemoval,
			PairwisePolicy:    PairwisePolicy(fc.PairwisePolicy),
		},
		scheduleFactor: fc.ScheduleFactor,
		workers:        workers,
		refLoss:        fc.RefLoss,
	}
	if fc.RadioKind == 1 {
		s.useShadow = true
		s.shadowSigma = fc.ShadowSigmaDB
		s.shadowSeed = fc.ShadowSeed
	}
	if fc.BatteryCapacity > 0 {
		s.useBattery = true
		s.batteryCap = fc.BatteryCapacity
		s.batteryDrain = fc.BatteryDrain
	}
	eng, err := newEngine(s)
	if err != nil {
		return nil, fmt.Errorf("%w: member fingerprint does not validate: %v", ErrCheckpointCorrupt, err)
	}
	if got := eng.fingerprint(); got != fc {
		return nil, fmt.Errorf("%w: member fingerprint %+v does not round-trip (got %+v)", ErrCheckpointCorrupt, fc, got)
	}
	return eng, nil
}

// RestoreFleet rebuilds a Fleet from a checkpoint written by
// Fleet.Checkpoint, under this engine's worker budget (build the engine
// with WithWorkers to restore onto a different pool size — per-network
// results are worker-count invariant either way). The checkpoint's base
// fingerprint must match this engine exactly (ErrConfigMismatch);
// heterogeneous members rebuild their derived engines from their own
// embedded fingerprints. Invalid input yields the same typed errors as
// RestoreSession. The restored fleet's sessions are edge-identical to
// the originals, its RNG streams and per-member tick clocks resume at
// their exact positions — including ragged ones — and continuing it
// (Run, Advance or TickEvents) produces byte-identical per-member
// results to the uninterrupted fleet.
func (e *Engine) RestoreFleet(r io.Reader) (*Fleet, error) {
	st, err := codec.DecodeFleet(r)
	if err != nil {
		return nil, err
	}
	if err := e.checkFingerprint(st.Config); err != nil {
		return nil, err
	}
	m := len(st.Nets)
	if m == 0 {
		return nil, fmt.Errorf("%w: fleet checkpoint holds no networks", ErrCheckpointCorrupt)
	}
	f := &Fleet{eng: e, workers: e.workers, nets: make([]*fleetNetwork, m)}
	plan := planShards(f.workers, m)
	for i := range st.Nets {
		net, err := e.networkFromState(i, &st.Nets[i], plan.inner)
		if err != nil {
			return nil, err
		}
		f.nets[i] = net
	}
	return f, nil
}

// networkFromState rebuilds one fleet member slot from its checkpointed
// state, deriving the member engine from its embedded fingerprint when
// it differs from the restoring engine's.
func (e *Engine) networkFromState(i int, ns *codec.NetworkState, inner int) (*fleetNetwork, error) {
	eng := e
	if ns.Config != e.fingerprint() {
		var err error
		if eng, err = engineFromFingerprint(ns.Config, e.workers); err != nil {
			return nil, fmt.Errorf("network %d: %w", i, err)
		}
	}
	src := &rand.PCG{}
	if err := src.UnmarshalBinary(ns.RNG); err != nil {
		return nil, fmt.Errorf("%w: network %d rng state: %v", ErrCheckpointCorrupt, i, err)
	}
	sess, err := eng.sessionFromState(&ns.Session, inner)
	if err != nil {
		return nil, fmt.Errorf("network %d: %w", i, err)
	}
	net := &fleetNetwork{
		net:    i,
		sess:   sess,
		eng:    eng,
		kind:   MemberKind(ns.Kind),
		weight: int(ns.Weight),
		src:    src,
		rng:    rand.New(src),
		events: ns.Events,
		series: TickSeries{
			Degree:     ns.Degree,
			Radius:     ns.Radius,
			Components: ns.Components,
			Energy:     ns.Energy,
			Residual:   ns.Residual,
			EnergyVar:  ns.EnergyVar,
		},
	}
	net.done.Store(ns.Done)
	net.target.Store(ns.Target)
	return net, nil
}

// Readmit restores quarantined member i from a fleet checkpoint written
// by Fleet.Checkpoint, re-admitting it to scheduling: the member's
// session, RNG stream, clock, event counter and accumulators all resume
// from the checkpointed state — a known-good fixed point — and its
// health returns to MemberHealthy. The member's spec (kind, weight,
// engine fingerprint) must match the checkpoint's slot for network i,
// and the checkpoint's base fingerprint must match the fleet engine
// (ErrConfigMismatch otherwise).
//
// The readmitted clock is the checkpoint's: if the checkpoint predates
// the quarantine, the member resumes behind the rest of the fleet (its
// target is aligned to its restored clock — the raggedness is visible
// in Watermarks) and its private RNG stream replays the exact event
// sequence it would have generated, so a readmitted TickFunc-driven
// member re-converges onto the byte-identical history. Event-driven
// members (TickEvents) need their post-checkpoint batches replayed by
// the driver — the job of cmd/fleetd's write-ahead log.
//
// Readmit must not be called while a Run, Advance or TickEvents is in
// flight.
func (f *Fleet) Readmit(i int, r io.Reader) error {
	if i < 0 || i >= len(f.nets) {
		return fmt.Errorf("%w: no network %d in a fleet of %d", ErrBadConfig, i, len(f.nets))
	}
	st, err := codec.DecodeFleet(r)
	if err != nil {
		return err
	}
	if err := f.eng.checkFingerprint(st.Config); err != nil {
		return err
	}
	if len(st.Nets) != len(f.nets) {
		return fmt.Errorf("%w: checkpoint holds %d networks, fleet has %d", ErrConfigMismatch, len(st.Nets), len(f.nets))
	}
	net, err := f.eng.networkFromState(i, &st.Nets[i], planShards(f.workers, len(f.nets)).inner)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.nets[i]
	if !old.quarantined() {
		return fmt.Errorf("%w: network %d is not quarantined", ErrBadConfig, i)
	}
	if net.kind != old.kind || net.weight != old.weight || net.eng.fingerprint() != old.eng.fingerprint() {
		return fmt.Errorf("%w: checkpoint slot %d describes a different member (kind %s weight %d)", ErrConfigMismatch, i, net.kind, net.weight)
	}
	// Re-align the target with the restored clock: whatever the member
	// was asked to do between the checkpoint and the quarantine is the
	// driver's to re-request (Advance) or replay (TickEvents).
	net.target.Store(net.done.Load())
	f.nets[i] = net
	return nil
}
