module cbtc

go 1.24
