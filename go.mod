module cbtc

go 1.23
