package cbtc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cbtc/internal/core"
	"cbtc/internal/graph"
	"cbtc/internal/spatial"
	"cbtc/internal/stats"
)

// ErrBadEvent reports a Session event referencing an unknown or departed
// node.
var ErrBadEvent = errors.New("cbtc: invalid session event")

// Session maintains a long-lived, evolving CBTC(α) topology under the
// paper's §4 reconfiguration semantics. Join, Leave and Move events
// repair the topology incrementally: only the nodes whose candidate
// neighborhood the event could have changed — those within maximum
// radius R of the event site — are touched. Every other node keeps its
// state untouched. Each affected observer's event is first classified
// through its §4 state machine (a leaveᵤ/aChangeᵤ that opens an α-gap
// means the node must regrow; anything else is an in-place repair),
// and the affected region is then recomputed to the exact minimal-
// power fixed point. When the affected region is large, the per-node
// recomputations are fanned across the engine's worker pool
// (WithWorkers); the repaired state is identical at every worker count.
//
// The maintained fixed point is exact: at any moment the live topology
// equals what a fresh Engine.Run over the current live placement would
// produce, so all of the paper's guarantees (connectivity for α ≤ 5π/6,
// the optimization theorems) hold continuously.
//
// A Session is safe for concurrent use; events are serialized
// internally. Node IDs are stable: departed nodes keep their index and
// are reported as isolated, and Join always appends a fresh ID.
type Session struct {
	eng *Engine
	// workers caps this session's repair parallelism. Standalone
	// sessions inherit the engine's pool; fleet shards are pinned to
	// their plan's inner budget so M concurrent sessions don't
	// multiply into M×GOMAXPROCS goroutines.
	workers int

	mu     sync.Mutex
	pos    []Point
	alive  []bool
	nodes  []core.NodeResult
	recs   []*core.Reconfigurator
	idx    *spatial.Grid // live nodes only; maintained across events
	stats  SessionStats
	cached *Result

	// Incremental-snapshot state, maintained only when the optimization
	// stack is per-node local (incremental == true, i.e. pairwise removal
	// is off). Repairs patch exactly the recomputed nodes' arcs; Snapshot
	// then takes copy-on-write clones of the maintained graphs — O(live
	// nodes) slice-header copies — instead of rebuilding the full
	// topology and ground-truth G_R from scratch, and later repairs copy
	// only the rows they actually touch.
	incremental bool
	pruned      [][]core.Discovery // per-node neighbor lists after op1/degree pruning
	nalpha      *graph.Digraph     // pruned directed relation N_α
	g           *graph.Graph       // its symmetrization per the optimization stack
	gr          *graph.Graph       // G_R over live nodes; departed nodes isolated
	grScratch   []int              // reusable max-power neighbor buffer

	// live is the maintained live-node count, so LiveCount and Observe
	// never rescan the liveness vector.
	live int

	// O(changed) Observe state, maintained on incremental stacks only:
	// comps tracks live connectivity across repairs (union-find with
	// rebuild-on-split), and radius caches each live node's NodeRadius
	// over g, recomputed only for nodes whose adjacency rows a repair
	// touched. The pend* slices accumulate one repair's delta — filled by
	// depart and patchArcs, drained by applyObserveDelta at the end of
	// recompute.
	comps      *graph.LiveComponents
	radius     []float64
	pendDepart []int
	pendAdd    []graph.Edge
	pendRemove []graph.Edge

	// mark/markGen implement allocation-free set membership for the
	// per-event dedup passes (observer unions, recompute id sets): node u
	// is in the current set iff mark[u] == markGen.
	mark    []int
	markGen int

	// Battery state, allocated only for engines built WithBattery (which
	// implies the incremental stack). battery[u] is node u's residual
	// energy; Tick drains each live node by drain × p(radius[u]) and
	// clamps at zero. Observe folds the residual moments in one ascending
	// pass — a pure function of (battery, alive), so restored sessions
	// observe bitwise-identically — which stays within the battery tick's
	// cost model: the drain itself is already Θ(live) per tick.
	battery []float64
}

// SessionStats aggregates the reconfiguration activity a Session has
// seen, in the vocabulary of §4.
type SessionStats struct {
	// Joins, Leaves and Moves count the events applied to the session.
	Joins, Leaves, Moves int
	// AngleChanges counts aChangeᵤ(v) observations: a still-reachable
	// neighbor v whose bearing moved.
	AngleChanges int
	// Regrows counts observers whose event opened an α-gap, forcing the
	// node to rerun its growing phase (from p(rad⁻) — Theorem 4.1's
	// restart rule).
	Regrows int
	// Repairs counts observers whose state was fixed in place without a
	// regrow (neighbor inserted, dropped, or shrunk back).
	Repairs int
}

// EventReport describes how one Join/Leave/Move event propagated.
type EventReport struct {
	// AngleChanges, Regrows and Repairs are this event's contribution to
	// the session statistics.
	AngleChanges, Regrows, Repairs int
	// Recomputed lists the nodes whose neighbor state was rebuilt —
	// the event node plus every live node within R of the event site.
	Recomputed []int
}

// NewSession runs CBTC(α) on the placement and returns a Session
// maintaining the result under reconfiguration events. The initial
// computation uses the engine's worker pool. Cancelling ctx aborts it.
func (e *Engine) NewSession(ctx context.Context, nodes []Point) (*Session, error) {
	return e.newSession(ctx, nodes, e.workers)
}

// newSession is NewSession with an explicit worker budget; fleets pin
// their shards' sessions to the shard plan's inner budget.
func (e *Engine) newSession(ctx context.Context, nodes []Point, workers int) (*Session, error) {
	exec, err := core.RunParallel(ctx, nodes, e.prop, e.cfg.Alpha, workers)
	if err != nil {
		return nil, err
	}
	if e.schedule != nil {
		exec = core.QuantizeTags(exec, e.schedule)
	}
	return e.sessionFromExec(ctx, nodes, exec, workers)
}

// NewProtocolSession builds a Session whose initial topology comes from
// the distributed Hello/Ack protocol of the paper's Figure 1
// (Engine.Simulate's execution path) instead of the exact minimal-power
// oracle. Nodes start from the power levels and discovery rows the
// protocol run actually produced — including the effects of lossy
// channels and AoA noise configured in sim — and all subsequent §4
// reconfiguration events repair that protocol-built state with the
// session's exact oracle machinery. The simulator is deterministic in
// sim.Seed, so the session's whole lifetime is reproducible at any
// worker count. Fleets use this constructor for MemberProtocol members.
func (e *Engine) NewProtocolSession(ctx context.Context, nodes []Point, sim SimOptions) (*Session, error) {
	return e.newProtocolSession(ctx, nodes, sim, e.workers)
}

// newProtocolSession is NewProtocolSession with an explicit worker
// budget. Protocol tags are already drawn from the protocol's discrete
// broadcast schedule, so the engine's quantization schedule — a model of
// exactly that discreteness for oracle tags — is not reapplied.
func (e *Engine) newProtocolSession(ctx context.Context, nodes []Point, sim SimOptions, workers int) (*Session, error) {
	exec, err := e.protoExec(ctx, nodes, sim)
	if err != nil {
		return nil, err
	}
	return e.sessionFromExec(ctx, nodes, exec, workers)
}

// sessionFromExec builds the live session state around a completed
// growing-phase execution — the shared back half of the oracle and
// protocol constructors.
func (e *Engine) sessionFromExec(ctx context.Context, nodes []Point, exec *core.Execution, workers int) (*Session, error) {
	s := &Session{
		eng:         e,
		workers:     workers,
		pos:         append([]Point(nil), nodes...),
		alive:       make([]bool, len(nodes)),
		nodes:       exec.Nodes,
		recs:        make([]*core.Reconfigurator, len(nodes)),
		idx:         spatial.New(nodes, e.prop.MaxLinkRadius()),
		incremental: !e.opts.PairwiseRemoval,
	}
	if e.battery {
		s.battery = make([]float64, len(nodes))
		for i := range s.battery {
			s.battery[i] = e.batteryCap
		}
	}
	for i := range nodes {
		s.alive[i] = true
		s.recs[i] = core.NewReconfigurator(e.cfg.Alpha, e.model, exec.Nodes[i].Neighbors)
	}
	s.live = len(nodes)
	if s.incremental {
		n := len(nodes)
		s.pruned = make([][]core.Discovery, n)
		pruneWorkers := core.ResolveWorkers(workers, n)
		// The per-node prune (coverage arithmetic when shrink-back is on)
		// is embarrassingly parallel, like the oracle itself.
		if err := core.ParallelRange(ctx, n, pruneWorkers, func(_, u int) {
			s.pruned[u] = e.pruneNeighbors(exec.Nodes[u].Neighbors)
		}); err != nil {
			return nil, err
		}
		rows := make([][]int32, n)
		for u := range s.pruned {
			rows[u] = core.SuccessorRow(nil, s.pruned[u])
		}
		s.nalpha = graph.NewDigraphFromRows(rows)
		if e.opts.AsymmetricRemoval {
			s.g = s.nalpha.MutualSubgraph()
		} else {
			s.g = s.nalpha.SymmetricClosure()
		}
		// Reuse the session's own grid — it indexes exactly these nodes.
		s.gr = core.MaxPowerGraphParallelIndexed(nodes, e.prop, s.idx, workers)
		s.comps = graph.NewLiveComponents(s.g, s.alive)
		s.radius = make([]float64, n)
		if err := core.ParallelRange(ctx, n, pruneWorkers, func(_, u int) {
			s.radius[u] = graph.NodeRadius(s.g, nodes, u)
		}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// pruneNeighbors applies the engine's per-node-local optimizations in
// BuildTopology's order: shrink-back (op1), then the non-contributing
// degree reduction. Pairwise removal is global and never goes through
// here.
func (e *Engine) pruneNeighbors(nbrs []core.Discovery) []core.Discovery {
	if e.opts.ShrinkBack {
		nbrs = core.ShrinkNeighbors(nbrs, e.cfg.Alpha)
	}
	if e.opts.NonContributing {
		nbrs = core.RemoveNonContributingNeighbors(nbrs, e.cfg.Alpha)
	}
	return nbrs
}

// Join introduces a new node at p — the §4 join scenario. It returns
// the node's ID (stable for the session's lifetime) and a report of the
// repair the event triggered.
func (s *Session) Join(p Point) (int, EventReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.admit(p)

	// The newcomer's beacon is a joinᵤ(id) event at every node that can
	// hear it; §4 always repairs a join in place (insert, then shrink
	// back), so no per-observer classification is needed before the
	// recompute below rebuilds the affected region.
	var rep EventReport
	observers := s.withinRange(id, p)
	rep.Repairs = len(observers)
	s.applyStats(&rep)
	rep.Recomputed = s.recompute(append(observers, id))
	return id, rep
}

// Leave removes a node — the §4 leave scenario (a crash or departure;
// in the protocol, detected by missed beacons). Neighbors whose cone
// coverage loses its last member in some direction regrow; the rest
// repair in place.
func (s *Session) Leave(id int) (EventReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLive(id); err != nil {
		return EventReport{}, err
	}
	site := s.pos[id]
	s.depart(id)

	var rep EventReport
	observers := s.withinRange(id, site)
	s.observeLeave(id, observers, &rep)
	s.applyStats(&rep)
	rep.Recomputed = s.recompute(append(observers, id))
	return rep, nil
}

// Move relocates a live node to p. Observers that still reach the node
// see an aChangeᵤ event (bearing moved), nodes it left behind see a
// leaveᵤ, nodes it approached see a joinᵤ; the moved node itself regrows
// from its new position. Gaps opened by any of these trigger regrows,
// exactly as §4 prescribes.
func (s *Session) Move(id int, p Point) (EventReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLive(id); err != nil {
		return EventReport{}, err
	}
	old := s.relocate(id, p)

	var rep EventReport
	// Observers around either position; the moved node itself regrows.
	observers := s.union(s.withinRange(id, old), s.withinRange(id, p))
	s.observeMove(id, p, observers, &rep)
	rep.Regrows++ // the moved node reruns its growing phase
	s.applyStats(&rep)
	rep.Recomputed = s.recompute(append(observers, id))
	return rep, nil
}

// admit performs the structural half of a join: it allocates the next
// node id, inserts p into every maintained structure, and links the
// newcomer into the incremental ground-truth G_R.
func (s *Session) admit(p Point) int {
	id := len(s.pos)
	s.pos = append(s.pos, p)
	s.alive = append(s.alive, true)
	s.nodes = append(s.nodes, core.NodeResult{})
	s.recs = append(s.recs, nil)
	s.idx.Add(id, p)
	s.live++
	if s.incremental {
		s.pruned = append(s.pruned, nil)
		s.nalpha.Grow(1)
		s.g.Grow(1)
		s.gr.Grow(1)
		s.patchGR(id)
		// The newcomer starts as a singleton component with radius 0; the
		// recompute's edge patches union and refresh it.
		s.comps.Join(id)
		s.radius = append(s.radius, 0)
	}
	if s.battery != nil {
		s.battery = append(s.battery, s.eng.batteryCap)
	}
	s.stats.Joins++
	return id
}

// depart performs the structural half of a leave: liveness, the spatial
// index, and the incremental G_R.
func (s *Session) depart(id int) {
	s.alive[id] = false
	s.idx.Remove(id)
	s.live--
	if s.incremental {
		s.gr.IsolateNode(id)
		// The topology-edge removals themselves are recorded by patchArcs
		// during the recompute; the departure is folded into the component
		// structure alongside them.
		s.pendDepart = append(s.pendDepart, id)
	}
	s.stats.Leaves++
}

// relocate performs the structural half of a move and returns the old
// position.
func (s *Session) relocate(id int, p Point) Point {
	old := s.pos[id]
	s.pos[id] = p
	s.idx.Move(id, p)
	if s.incremental {
		s.gr.IsolateNode(id)
		s.patchGR(id)
	}
	s.stats.Moves++
	return old
}

// observeLeave classifies a leaveᵤ(id) event through each observer's §4
// state machine, accumulating the regrow/repair counts into rep.
// Observers without a state machine yet (nodes admitted earlier in the
// same batch, awaiting their first recompute) never knew id and are
// skipped, exactly as a non-neighbor is.
func (s *Session) observeLeave(id int, observers []int, rep *EventReport) {
	for _, u := range observers {
		rc := s.recs[u]
		if rc == nil || !rc.Has(id) {
			continue
		}
		if rc.Leave(id) == core.ActionRegrow {
			rep.Regrows++
		} else {
			rep.Repairs++
		}
	}
}

// observeMove classifies a move of node id to p at each observer: an
// aChangeᵤ for observers that still reach it, a leaveᵤ for those it
// left, a joinᵤ for those it approached. Observers without a state
// machine yet treat a reachable mover as a joinᵤ.
func (s *Session) observeMove(id int, p Point, observers []int, rep *EventReport) {
	prop := s.eng.prop
	pure := prop.DistancePure()
	r := prop.MaxLinkRadius() * (1 + rangeSlack)
	for _, u := range observers {
		rc := s.recs[u]
		was := rc != nil && rc.Has(id)
		d := s.pos[u].Dist(p)
		// Pure models keep the historical slack-widened distance test;
		// link models re-check the exact per-link range predicate.
		reaches := d <= r && (pure || prop.LinkInRange(u, id, d))
		switch {
		case was && reaches:
			rep.AngleChanges++
			if rc.AngleChange(id, s.pos[u].Bearing(p)) == core.ActionRegrow {
				rep.Regrows++
			} else {
				rep.Repairs++
			}
		case was && !reaches:
			if rc.Leave(id) == core.ActionRegrow {
				rep.Regrows++
			} else {
				rep.Repairs++
			}
		case !was && reaches:
			// A joinᵤ observation: always an in-place repair (§4).
			rep.Repairs++
		}
	}
}

// applyStats folds one event report's classification counts into the
// session totals.
func (s *Session) applyStats(rep *EventReport) {
	s.stats.AngleChanges += rep.AngleChanges
	s.stats.Regrows += rep.Regrows
	s.stats.Repairs += rep.Repairs
}

// patchGR re-links node id in the maintained ground-truth G_R: an edge
// to every live node within maximum-power range of its current position,
// under exactly MaxPowerGraph's distance predicate. The spatial index
// holds exactly the live nodes, so the incremental graph stays equal to
// a fresh MaxPowerGraph with departed nodes isolated.
func (s *Session) patchGR(id int) {
	s.grScratch = core.AppendMaxPowerNeighbors(s.grScratch[:0], s.pos, s.eng.prop, id, s.idx)
	for _, v := range s.grScratch {
		s.gr.AddEdge(id, v)
	}
}

// Snapshot returns the live topology as a Result — the same artifact
// Engine.Run produces, over the session's current placement. Departed
// nodes appear isolated, in both the topology and its ground-truth
// G_R, so Result.PreservesConnectivity keeps its meaning. Snapshots are
// cached between events.
//
// When the optimization stack is per-node local (pairwise removal off),
// the snapshot is assembled from the incrementally-maintained graphs —
// repairs only ever rebuilt the recomputed nodes' arcs — and costs one
// clone instead of a full topology + G_R rebuild. With pairwise removal
// (a global transformation) the full rebuild runs as before.
func (s *Session) Snapshot() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked is Snapshot with the session lock already held; Tick
// and Observe use it for their atomic apply-and-observe paths.
func (s *Session) snapshotLocked() (*Result, error) {
	if s.cached != nil {
		return s.cached, nil
	}
	if s.incremental {
		exec := &core.Execution{
			Alpha: s.eng.cfg.Alpha,
			Model: s.eng.model,
			Pos:   append([]Point(nil), s.pos...),
			Nodes: make([]core.NodeResult, len(s.pos)),
		}
		for u := range exec.Nodes {
			exec.Nodes[u] = core.NodeResult{
				Neighbors: s.pruned[u],
				GrowPower: s.nodes[u].GrowPower,
				Boundary:  s.nodes[u].Boundary,
			}
		}
		g := s.g.Clone()
		topo := &core.Topology{
			Exec:   exec,
			Nalpha: s.nalpha.Clone(),
			G:      g,
			Gpre:   g, // equal when pairwise removal is off, as in BuildTopology
			Opts:   s.eng.opts,
		}
		// The radius cache already holds NodeRadius(g, pos, u) for every
		// slot (0 for departed nodes), so the snapshot folds it instead of
		// re-deriving the radius/degree tables from scratch — the assembled
		// Result is bitwise identical either way.
		s.cached = newResultFromRadii(s.pos, s.eng.model, topo, s.gr.Clone(), s.radius)
		return s.cached, nil
	}
	exec := &core.Execution{
		Alpha: s.eng.cfg.Alpha,
		Model: s.eng.model,
		Pos:   append([]Point(nil), s.pos...),
		Nodes: append([]core.NodeResult(nil), s.nodes...),
	}
	topo, err := core.BuildTopology(exec, s.eng.opts)
	if err != nil {
		return nil, fmt.Errorf("cbtc: session snapshot: %w", err)
	}
	gr := core.MaxPowerGraphParallel(s.pos, s.eng.model, s.workers)
	for u := range s.alive {
		if !s.alive[u] {
			gr.IsolateNode(u)
		}
	}
	s.cached = newResultWithGR(s.pos, s.eng.model, topo, gr)
	return s.cached, nil
}

// Stats returns the cumulative reconfiguration statistics.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TickStats is a cheap aggregate read of a session's live topology —
// the per-tick observation a Fleet accumulates. All metrics range over
// live nodes only: departed nodes contribute neither components nor
// degree mass, unlike Result.Components which counts their isolated
// slots.
type TickStats struct {
	// Live is the number of live nodes.
	Live int
	// Edges is the number of edges of the live topology G.
	Edges int
	// Components is the number of connected components among live nodes.
	Components int
	// AvgDegree and AvgRadius are Table 1's statistics over live nodes.
	AvgDegree, AvgRadius float64
	// Energy is the summed growing-phase power p_{u,α} of live nodes —
	// the §5 energy figure of merit.
	Energy float64
	// Residual is the mean residual battery over live nodes; zero when
	// the engine has no battery model.
	Residual float64
	// EnergyVar is the population variance of residual battery over live
	// nodes — the balance figure of merit of the lifetime workloads: a
	// topology that drains evenly keeps it low. Zero without a battery
	// model.
	EnergyVar float64
}

// TickSeries accumulates a TickStats series through mergeable streaming
// moments — the one aggregate shape shared by fleet members
// (FleetNetworkReport.Series), whole fleets (FleetReport.Series), the
// fleetd HTTP surface and the fleetsim tables, so every layer names the
// same quantities the same way.
type TickSeries struct {
	// Degree, Radius, Components and Energy stream the corresponding
	// TickStats fields, one observation per recorded tick.
	Degree, Radius, Components, Energy stats.Stream
	// Residual and EnergyVar stream the battery fields of TickStats; on
	// engines without a battery model they observe zeros.
	Residual, EnergyVar stats.Stream
}

// Observe folds one tick's stats into the series.
func (ts *TickSeries) Observe(s TickStats) {
	ts.Degree.Add(s.AvgDegree)
	ts.Radius.Add(s.AvgRadius)
	ts.Components.Add(float64(s.Components))
	ts.Energy.Add(s.Energy)
	ts.Residual.Add(s.Residual)
	ts.EnergyVar.Add(s.EnergyVar)
}

// Merge folds another series into this one. Merging in a fixed order
// keeps the combined floating-point moments deterministic.
func (ts *TickSeries) Merge(o *TickSeries) {
	ts.Degree.Merge(&o.Degree)
	ts.Radius.Merge(&o.Radius)
	ts.Components.Merge(&o.Components)
	ts.Energy.Merge(&o.Energy)
	ts.Residual.Merge(&o.Residual)
	ts.EnergyVar.Merge(&o.EnergyVar)
}

// Observe computes the session's current TickStats. For engines whose
// optimization stack is per-node local the read is O(changed): repairs
// maintain the component structure, the live/edge counters and the
// per-node radius cache, so observing costs the maintained counters
// plus one flat summation over the cached values — no BFS, no radius
// recomputation, no Result assembly. With pairwise removal (a global
// transformation with no per-node delta) it derives the stats from the
// (cached) Snapshot via the reference full-scan path.
func (s *Session) Observe() (TickStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.observeLocked()
}

func (s *Session) observeLocked() (TickStats, error) {
	if !s.incremental {
		snap, err := s.snapshotLocked()
		if err != nil {
			return TickStats{}, err
		}
		return observeGraph(snap.G, s.alive, s.pos, s.nodes), nil
	}
	ts := TickStats{Live: s.live, Edges: s.g.EdgeCount(), Components: s.comps.Count()}
	// The radius and energy sums fold the cached per-node values in the
	// same ascending order as the reference scan, so the incremental
	// stats are bitwise identical to observeGraph's — not just close —
	// and stay so across checkpoint/restore.
	for u, alive := range s.alive {
		if !alive {
			continue
		}
		ts.AvgRadius += s.radius[u]
		ts.Energy += s.nodes[u].GrowPower
	}
	if ts.Live > 0 {
		ts.AvgDegree = 2 * float64(ts.Edges) / float64(ts.Live)
		ts.AvgRadius /= float64(ts.Live)
	}
	s.observeBattery(&ts)
	return ts, nil
}

// observeBattery fills the battery fields of ts by folding the residual
// moments over live nodes in ascending order — a pure function of the
// battery and liveness vectors, so a restored session observes
// bitwise-identical values. The Θ(live) pass only exists on battery
// engines, whose ticks already pay Θ(live) for the drain itself.
func (s *Session) observeBattery(ts *TickStats) {
	if s.battery == nil || ts.Live == 0 {
		return
	}
	var sum, sumSq float64
	for u, alive := range s.alive {
		if alive {
			b := s.battery[u]
			sum += b
			sumSq += b * b
		}
	}
	n := float64(ts.Live)
	mean := sum / n
	ts.Residual = mean
	v := sumSq/n - mean*mean
	if v < 0 { // floating-point cancellation on near-equal residuals
		v = 0
	}
	ts.EnergyVar = v
}

// drainLocked charges every live node one tick's transmit energy —
// drain × p(radius), the nominal power of its installed broadcast radius
// scaled by the engine's drain coefficient — clamping batteries at zero.
// It runs inside Tick, after the batch's repairs installed the tick's
// radii and before the observation, so drained energy reflects the
// topology actually transmitted on. A no-battery engine makes it a
// no-op.
func (s *Session) drainLocked() {
	if s.battery == nil || s.eng.batteryDrain == 0 {
		return
	}
	drain := s.eng.batteryDrain
	m := s.eng.model
	for u, alive := range s.alive {
		if !alive {
			continue
		}
		b := s.battery[u]
		if b == 0 {
			continue
		}
		nb := b - drain*m.PowerFor(s.radius[u])
		if nb < 0 {
			nb = 0
		}
		s.battery[u] = nb
	}
}

// Depleted returns the ids of live nodes whose battery has emptied, in
// ascending order — the deaths a lifetime driver converts into Leave
// events. It returns nil on engines without a battery model.
func (s *Session) Depleted() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depletedLocked()
}

func (s *Session) depletedLocked() []int {
	if s.battery == nil {
		return nil
	}
	var out []int
	for u, alive := range s.alive {
		if alive && s.battery[u] == 0 {
			out = append(out, u)
		}
	}
	return out
}

// Residual returns node id's residual battery energy — the full capacity
// until the first tick drains it, zero once depleted, and the last value
// for departed nodes. Engines without a battery model report 0. Like
// Position it panics on an id the session never allocated.
func (s *Session) Residual(id int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.pos) {
		panic(fmt.Sprintf("cbtc: session has no node %d (len %d)", id, len(s.pos)))
	}
	if s.battery == nil {
		return 0
	}
	return s.battery[id]
}

// observeGraph computes TickStats from scratch over g — the reference
// full-scan path: a component BFS plus a fresh per-node radius pass.
// The pairwise-removal stack observes through it every tick; on
// incremental stacks it is the oracle the maintained path is tested
// (and benchmarked) against.
func observeGraph(g *graph.Graph, alive []bool, pos []Point, nodes []core.NodeResult) TickStats {
	ts := TickStats{Edges: g.EdgeCount(), Components: liveComponents(g, alive)}
	for u, a := range alive {
		if !a {
			continue
		}
		ts.Live++
		ts.AvgRadius += graph.NodeRadius(g, pos, u)
		ts.Energy += nodes[u].GrowPower
	}
	if ts.Live > 0 {
		ts.AvgDegree = 2 * float64(ts.Edges) / float64(ts.Live)
		ts.AvgRadius /= float64(ts.Live)
	}
	return ts
}

// liveComponents counts the connected components of g restricted to the
// live nodes. Edges never touch departed nodes (repairs isolate them),
// so a BFS seeded at live nodes only ever visits live nodes.
func liveComponents(g *graph.Graph, alive []bool) int {
	visited := make([]bool, g.Len())
	var stack []int32
	count := 0
	for u, live := range alive {
		if !live || visited[u] {
			continue
		}
		count++
		visited[u] = true
		stack = append(stack[:0], int32(u))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Row(int(x)) {
				if !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return count
}

// Len returns the number of node slots ever allocated, including
// departed nodes.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pos)
}

// LiveCount returns the number of live nodes, from the maintained
// counter — O(1), no scan of the liveness vector.
func (s *Session) LiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// NodeRadius returns node id's current transmission radius — the length
// of its longest incident topology edge, 0 for isolated or departed
// nodes. On incremental stacks it reads the maintained per-node cache;
// with pairwise removal it derives the answer from the (cached)
// Snapshot. Like Position it panics on an id the session never
// allocated.
func (s *Session) NodeRadius(id int) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.pos) {
		panic(fmt.Sprintf("cbtc: session has no node %d (len %d)", id, len(s.pos)))
	}
	if !s.alive[id] {
		return 0, nil
	}
	if s.incremental {
		return s.radius[id], nil
	}
	snap, err := s.snapshotLocked()
	if err != nil {
		return 0, err
	}
	return graph.NodeRadius(snap.G, s.pos, id), nil
}

// Alive reports whether id identifies a live node.
func (s *Session) Alive(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return id >= 0 && id < len(s.alive) && s.alive[id]
}

// Position returns node id's current position (its last position if it
// departed). It panics on an id the session never allocated, matching
// the Graph accessors.
func (s *Session) Position(id int) Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.pos) {
		panic(fmt.Sprintf("cbtc: session has no node %d (len %d)", id, len(s.pos)))
	}
	return s.pos[id]
}

// Engine returns the engine whose configuration the session maintains.
func (s *Session) Engine() *Engine { return s.eng }

// rangeSlack widens the affected-region test slightly beyond R so that
// borderline candidates (admitted by the oracle's own distance
// tolerance) are never missed. Over-inclusion only costs a recompute;
// under-inclusion would let stale state survive.
const rangeSlack = 1e-9

// withinRange returns the live nodes other than self within the
// propagation model's link-radius bound of p, in ascending id order. The
// spatial index — which holds exactly the live nodes — answers the
// radius query; the slightly widened query radius plus the exact
// distance re-check reproduce the full-scan predicate. The bound is the
// affected-region radius: no link — even a favorably-shadowed one — can
// exceed it, so every node whose neighborhood an event could change is
// included.
func (s *Session) withinRange(self int, p Point) []int {
	r := s.eng.prop.MaxLinkRadius() * (1 + rangeSlack)
	out := make([]int, 0, 16)
	for _, v := range s.idx.Within(p, r*(1+spatial.QuerySlack)) {
		if v == self {
			continue
		}
		if s.pos[v].Dist(p) <= r {
			out = append(out, v)
		}
	}
	return out
}

// repairParallelMin is the affected-region size below which a repair
// stays serial: each recomputation costs tens of microseconds, so small
// regions would lose more to goroutine startup than they win.
const repairParallelMin = 16

// recomputed is one node's phase-1 output: everything derivable from the
// read-only session state, computed (possibly concurrently) before the
// serial phase 2 applies it.
type recomputed struct {
	nr     core.NodeResult
	rec    *core.Reconfigurator
	pruned []core.Discovery
}

// recompute rebuilds the exact minimal-power state of every listed node
// over the current live placement and resets its §4 state machine. It
// returns the ids actually recomputed (duplicates removed, in input
// order) and invalidates the snapshot cache.
//
// The rebuild runs in two phases. Phase 1 computes each node's new
// state — the RunNode cone test, its §4 state machine, and the pruned
// neighbor list — against read-only session state, fanned across the
// engine's worker pool when the affected region is large (a Move at
// n=10k touches every node within R of two sites). Phase 2 serially
// installs the results and patches the recomputed nodes' arcs into the
// incrementally-maintained topology graphs.
func (s *Session) recompute(ids []int) []int {
	s.newMarkEpoch()
	out := make([]int, 0, len(ids))
	live := make([]int, 0, len(ids))
	for _, u := range ids {
		if s.marked(u) {
			continue
		}
		out = append(out, u)
		if s.alive[u] {
			live = append(live, u)
		}
	}

	workers := 1
	if len(live) >= repairParallelMin && s.workers != 1 {
		workers = core.ResolveWorkers(s.workers, len(live)*parallelGrain)
	}
	results := make([]recomputed, len(live))
	runners := make([]core.NodeRunner, workers)
	// ctx is inert: repairs are short, lock-held critical sections with
	// no caller-supplied context to honor.
	_ = core.ParallelRange(context.Background(), len(live), workers, func(w, i int) {
		u := live[i]
		nr := runners[w].RunNode(s.pos, s.alive, s.eng.prop, s.eng.cfg.Alpha, u, s.idx)
		if s.eng.schedule != nil {
			nr.Neighbors = core.QuantizeNeighbors(nr.Neighbors, s.eng.schedule)
		}
		rc := recomputed{
			nr:  nr,
			rec: core.NewReconfigurator(s.eng.cfg.Alpha, s.eng.model, nr.Neighbors),
		}
		if s.incremental {
			rc.pruned = s.eng.pruneNeighbors(nr.Neighbors)
		}
		results[i] = rc
	})

	for i, u := range live {
		s.nodes[u] = results[i].nr
		s.recs[u] = results[i].rec
		if s.incremental {
			s.patchArcs(u, results[i].pruned)
		}
	}
	for _, u := range out {
		if s.alive[u] {
			continue
		}
		s.nodes[u] = core.NodeResult{}
		s.recs[u] = nil
		if s.incremental {
			s.patchArcs(u, nil)
		}
	}
	if s.incremental {
		s.applyObserveDelta(live)
	}
	s.cached = nil
	return out
}

// applyObserveDelta folds one finished repair into the O(changed)
// Observe state: the pending departures and the exact edge diff the arc
// patches recorded go into the maintained component structure, and the
// per-node radius cache is refreshed for exactly the nodes whose
// adjacency rows changed — the recomputed live nodes plus the live
// endpoints of diffed edges (an edge patch can touch a neighbor outside
// the recompute set through the symmetric closure).
func (s *Session) applyObserveDelta(recomputed []int) {
	s.comps.Apply(s.g, graph.Delta{
		Departed: s.pendDepart,
		Added:    s.pendAdd,
		Removed:  s.pendRemove,
	})
	s.newMarkEpoch()
	for _, u := range recomputed {
		s.marked(u)
		s.radius[u] = graph.NodeRadius(s.g, s.pos, u)
	}
	refresh := func(u int) {
		if s.alive[u] && !s.marked(u) {
			s.radius[u] = graph.NodeRadius(s.g, s.pos, u)
		}
	}
	for _, e := range s.pendAdd {
		refresh(e.U)
		refresh(e.V)
	}
	for _, e := range s.pendRemove {
		refresh(e.U)
		refresh(e.V)
	}
	for _, u := range s.pendDepart {
		s.radius[u] = 0
	}
	s.pendDepart = s.pendDepart[:0]
	s.pendAdd = s.pendAdd[:0]
	s.pendRemove = s.pendRemove[:0]
}

// parallelGrain scales a repair's item count when resolving workers: one
// RunNode is orders of magnitude more work than one index of the
// oracle's node range, so ResolveWorkers' stay-serial floor (tuned for
// the latter) would otherwise keep mid-sized repairs on one core.
const parallelGrain = 64

// patchArcs replaces node u's outgoing arcs in the maintained N_α with
// the new pruned neighbor set and patches the symmetric graph edge by
// edge. Processing every recomputed node once, in any order, leaves both
// graphs exactly as a from-scratch rebuild over the new state would.
func (s *Session) patchArcs(u int, pruned []core.Discovery) {
	mutual := s.eng.opts.AsymmetricRemoval
	next := make(map[int]bool, len(pruned))
	for _, nb := range pruned {
		next[nb.ID] = true
	}
	for _, nb := range s.pruned[u] {
		v := nb.ID
		if next[v] {
			continue
		}
		s.nalpha.RemoveArc(u, v)
		// A closure edge survives the arc removal iff the reverse arc
		// remains; a mutual edge never does.
		if mutual || !s.nalpha.HasArc(v, u) {
			if s.g.RemoveEdge(u, v) {
				s.pendRemove = append(s.pendRemove, graph.NewEdge(u, v))
			}
		}
	}
	for _, nb := range pruned {
		v := nb.ID
		if s.nalpha.HasArc(u, v) {
			continue
		}
		s.nalpha.AddArc(u, v)
		if !mutual || s.nalpha.HasArc(v, u) {
			if s.g.AddEdge(u, v) {
				s.pendAdd = append(s.pendAdd, graph.NewEdge(u, v))
			}
		}
	}
	s.pruned[u] = pruned
}

func (s *Session) checkLive(id int) error {
	if id < 0 || id >= len(s.pos) {
		return fmt.Errorf("%w: node %d does not exist", ErrBadEvent, id)
	}
	if !s.alive[id] {
		return fmt.Errorf("%w: node %d already departed", ErrBadEvent, id)
	}
	return nil
}

// newMarkEpoch starts a fresh membership set over the session's current
// id space; marked admits each id into it exactly once.
func (s *Session) newMarkEpoch() {
	s.markGen++
	if len(s.mark) < len(s.pos) {
		s.mark = append(s.mark, make([]int, len(s.pos)-len(s.mark))...)
	}
}

// marked reports whether u is already in the current epoch's set, adding
// it if not.
func (s *Session) marked(u int) bool {
	if s.mark[u] == s.markGen {
		return true
	}
	s.mark[u] = s.markGen
	return false
}

// union merges two id lists preserving first-occurrence order, deduping
// through the session's mark stamps instead of a per-call map.
func (s *Session) union(a, b []int) []int {
	s.newMarkEpoch()
	out := make([]int, 0, len(a)+len(b))
	for _, lst := range [2][]int{a, b} {
		for _, v := range lst {
			if !s.marked(v) {
				out = append(out, v)
			}
		}
	}
	return out
}
