package cbtc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cbtc/internal/core"
	"cbtc/internal/spatial"
)

// ErrBadEvent reports a Session event referencing an unknown or departed
// node.
var ErrBadEvent = errors.New("cbtc: invalid session event")

// Session maintains a long-lived, evolving CBTC(α) topology under the
// paper's §4 reconfiguration semantics. Join, Leave and Move events
// repair the topology incrementally: only the nodes whose candidate
// neighborhood the event could have changed — those within maximum
// radius R of the event site — are touched. Every other node keeps its
// state untouched. Each affected observer's event is first classified
// through its §4 state machine (a leaveᵤ/aChangeᵤ that opens an α-gap
// means the node must regrow; anything else is an in-place repair),
// and the affected region is then recomputed to the exact minimal-
// power fixed point.
//
// The maintained fixed point is exact: at any moment the live topology
// equals what a fresh Engine.Run over the current live placement would
// produce, so all of the paper's guarantees (connectivity for α ≤ 5π/6,
// the optimization theorems) hold continuously.
//
// A Session is safe for concurrent use; events are serialized
// internally. Node IDs are stable: departed nodes keep their index and
// are reported as isolated, and Join always appends a fresh ID.
type Session struct {
	eng *Engine

	mu     sync.Mutex
	pos    []Point
	alive  []bool
	nodes  []core.NodeResult
	recs   []*core.Reconfigurator
	idx    *spatial.Grid // live nodes only; maintained across events
	stats  SessionStats
	cached *Result
}

// SessionStats aggregates the reconfiguration activity a Session has
// seen, in the vocabulary of §4.
type SessionStats struct {
	// Joins, Leaves and Moves count the events applied to the session.
	Joins, Leaves, Moves int
	// AngleChanges counts aChangeᵤ(v) observations: a still-reachable
	// neighbor v whose bearing moved.
	AngleChanges int
	// Regrows counts observers whose event opened an α-gap, forcing the
	// node to rerun its growing phase (from p(rad⁻) — Theorem 4.1's
	// restart rule).
	Regrows int
	// Repairs counts observers whose state was fixed in place without a
	// regrow (neighbor inserted, dropped, or shrunk back).
	Repairs int
}

// EventReport describes how one Join/Leave/Move event propagated.
type EventReport struct {
	// AngleChanges, Regrows and Repairs are this event's contribution to
	// the session statistics.
	AngleChanges, Regrows, Repairs int
	// Recomputed lists the nodes whose neighbor state was rebuilt —
	// the event node plus every live node within R of the event site.
	Recomputed []int
}

// NewSession runs CBTC(α) on the placement and returns a Session
// maintaining the result under reconfiguration events. Cancelling ctx
// aborts the initial computation.
func (e *Engine) NewSession(ctx context.Context, nodes []Point) (*Session, error) {
	exec, err := core.RunContext(ctx, nodes, e.model, e.cfg.Alpha)
	if err != nil {
		return nil, err
	}
	if e.schedule != nil {
		exec = core.QuantizeTags(exec, e.schedule)
	}
	s := &Session{
		eng:   e,
		pos:   append([]Point(nil), nodes...),
		alive: make([]bool, len(nodes)),
		nodes: exec.Nodes,
		recs:  make([]*core.Reconfigurator, len(nodes)),
		idx:   spatial.New(nodes, e.model.MaxRadius),
	}
	for i := range nodes {
		s.alive[i] = true
		s.recs[i] = core.NewReconfigurator(e.cfg.Alpha, e.model, exec.Nodes[i].Neighbors)
	}
	return s, nil
}

// Join introduces a new node at p — the §4 join scenario. It returns
// the node's ID (stable for the session's lifetime) and a report of the
// repair the event triggered.
func (s *Session) Join(p Point) (int, EventReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := len(s.pos)
	s.pos = append(s.pos, p)
	s.alive = append(s.alive, true)
	s.nodes = append(s.nodes, core.NodeResult{})
	s.recs = append(s.recs, nil)
	s.idx.Add(id, p)
	s.stats.Joins++

	// The newcomer's beacon is a joinᵤ(id) event at every node that can
	// hear it; §4 always repairs a join in place (insert, then shrink
	// back), so no per-observer classification is needed before the
	// recompute below rebuilds the affected region.
	var rep EventReport
	observers := s.withinRange(id, p)
	rep.Repairs = len(observers)
	s.stats.Repairs += rep.Repairs
	rep.Recomputed = s.recompute(append(observers, id))
	return id, rep
}

// Leave removes a node — the §4 leave scenario (a crash or departure;
// in the protocol, detected by missed beacons). Neighbors whose cone
// coverage loses its last member in some direction regrow; the rest
// repair in place.
func (s *Session) Leave(id int) (EventReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLive(id); err != nil {
		return EventReport{}, err
	}
	s.alive[id] = false
	s.idx.Remove(id)
	s.stats.Leaves++

	var rep EventReport
	observers := s.withinRange(id, s.pos[id])
	for _, u := range observers {
		if !s.recs[u].Has(id) {
			continue
		}
		if s.recs[u].Leave(id) == core.ActionRegrow {
			rep.Regrows++
		} else {
			rep.Repairs++
		}
	}
	s.stats.Regrows += rep.Regrows
	s.stats.Repairs += rep.Repairs
	rep.Recomputed = s.recompute(append(observers, id))
	return rep, nil
}

// Move relocates a live node to p. Observers that still reach the node
// see an aChangeᵤ event (bearing moved), nodes it left behind see a
// leaveᵤ, nodes it approached see a joinᵤ; the moved node itself regrows
// from its new position. Gaps opened by any of these trigger regrows,
// exactly as §4 prescribes.
func (s *Session) Move(id int, p Point) (EventReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLive(id); err != nil {
		return EventReport{}, err
	}
	old := s.pos[id]
	s.pos[id] = p
	s.idx.Move(id, p)
	s.stats.Moves++

	var rep EventReport
	// Observers around either position; the moved node itself regrows.
	observers := union(s.withinRange(id, old), s.withinRange(id, p))
	r := s.eng.model.MaxRadius * (1 + rangeSlack)
	for _, u := range observers {
		was := s.recs[u].Has(id)
		reaches := s.pos[u].Dist(p) <= r
		switch {
		case was && reaches:
			rep.AngleChanges++
			if s.recs[u].AngleChange(id, s.pos[u].Bearing(p)) == core.ActionRegrow {
				rep.Regrows++
			} else {
				rep.Repairs++
			}
		case was && !reaches:
			if s.recs[u].Leave(id) == core.ActionRegrow {
				rep.Regrows++
			} else {
				rep.Repairs++
			}
		case !was && reaches:
			// A joinᵤ observation: always an in-place repair (§4).
			rep.Repairs++
		}
	}
	rep.Regrows++ // the moved node reruns its growing phase
	s.stats.AngleChanges += rep.AngleChanges
	s.stats.Regrows += rep.Regrows
	s.stats.Repairs += rep.Repairs
	rep.Recomputed = s.recompute(append(observers, id))
	return rep, nil
}

// Snapshot returns the live topology as a Result — the same artifact
// Engine.Run produces, over the session's current placement. Departed
// nodes appear isolated, in both the topology and its ground-truth
// G_R, so Result.PreservesConnectivity keeps its meaning. Snapshots are
// cached between events.
func (s *Session) Snapshot() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cached != nil {
		return s.cached, nil
	}
	exec := &core.Execution{
		Alpha: s.eng.cfg.Alpha,
		Model: s.eng.model,
		Pos:   append([]Point(nil), s.pos...),
		Nodes: append([]core.NodeResult(nil), s.nodes...),
	}
	topo, err := core.BuildTopology(exec, s.eng.opts)
	if err != nil {
		return nil, fmt.Errorf("cbtc: session snapshot: %w", err)
	}
	gr := core.MaxPowerGraph(s.pos, s.eng.model)
	for u := range s.alive {
		if !s.alive[u] {
			gr.IsolateNode(u)
		}
	}
	s.cached = newResultWithGR(s.pos, s.eng.model, topo, gr)
	return s.cached, nil
}

// Stats returns the cumulative reconfiguration statistics.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of node slots ever allocated, including
// departed nodes.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pos)
}

// LiveCount returns the number of live nodes.
func (s *Session) LiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// Alive reports whether id identifies a live node.
func (s *Session) Alive(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return id >= 0 && id < len(s.alive) && s.alive[id]
}

// Position returns node id's current position (its last position if it
// departed). It panics on an id the session never allocated, matching
// the Graph accessors.
func (s *Session) Position(id int) Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.pos) {
		panic(fmt.Sprintf("cbtc: session has no node %d (len %d)", id, len(s.pos)))
	}
	return s.pos[id]
}

// Engine returns the engine whose configuration the session maintains.
func (s *Session) Engine() *Engine { return s.eng }

// rangeSlack widens the affected-region test slightly beyond R so that
// borderline candidates (admitted by the oracle's own distance
// tolerance) are never missed. Over-inclusion only costs a recompute;
// under-inclusion would let stale state survive.
const rangeSlack = 1e-9

// withinRange returns the live nodes other than self within R of p, in
// ascending id order. The spatial index — which holds exactly the live
// nodes — answers the radius query; the slightly widened query radius
// plus the exact distance re-check reproduce the full-scan predicate.
func (s *Session) withinRange(self int, p Point) []int {
	r := s.eng.model.MaxRadius * (1 + rangeSlack)
	out := make([]int, 0, 16)
	for _, v := range s.idx.Within(p, r*(1+spatial.QuerySlack)) {
		if v == self {
			continue
		}
		if s.pos[v].Dist(p) <= r {
			out = append(out, v)
		}
	}
	return out
}

// recompute rebuilds the exact minimal-power state of every listed node
// over the current live placement and resets its §4 state machine. It
// returns the ids actually recomputed (duplicates removed, in input
// order) and invalidates the snapshot cache.
func (s *Session) recompute(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	out := make([]int, 0, len(ids))
	for _, u := range ids {
		if seen[u] {
			continue
		}
		seen[u] = true
		out = append(out, u)
		if !s.alive[u] {
			s.nodes[u] = core.NodeResult{}
			s.recs[u] = nil
			continue
		}
		nr := core.RunNode(s.pos, s.alive, s.eng.model, s.eng.cfg.Alpha, u, s.idx)
		if s.eng.schedule != nil {
			nr.Neighbors = core.QuantizeNeighbors(nr.Neighbors, s.eng.schedule)
		}
		s.nodes[u] = nr
		s.recs[u] = core.NewReconfigurator(s.eng.cfg.Alpha, s.eng.model, nr.Neighbors)
	}
	s.cached = nil
	return out
}

func (s *Session) checkLive(id int) error {
	if id < 0 || id >= len(s.pos) {
		return fmt.Errorf("%w: node %d does not exist", ErrBadEvent, id)
	}
	if !s.alive[id] {
		return fmt.Errorf("%w: node %d already departed", ErrBadEvent, id)
	}
	return nil
}

func union(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, lst := range [2][]int{a, b} {
		for _, v := range lst {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}
