package cbtc

import (
	"testing"
)

func panels(t *testing.T) map[string]Panel {
	t.Helper()
	ps, err := Figure6Panels(42)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]Panel, len(ps))
	for _, p := range ps {
		out[p.Key] = p
	}
	return out
}

func TestFigure6PanelInventory(t *testing.T) {
	ps := panels(t)
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		p, ok := ps[key]
		if !ok {
			t.Fatalf("panel %s missing", key)
		}
		if p.Result == nil || p.Result.G.Len() != 100 {
			t.Errorf("panel %s: want a 100-node topology", key)
		}
		if p.Title == "" {
			t.Errorf("panel %s: missing title", key)
		}
	}
}

// The visual claims of Figure 6, as edge-count facts: every optimization
// stage sparsifies the previous one, on the SAME network.
func TestFigure6Sparsification(t *testing.T) {
	ps := panels(t)
	edges := func(k string) int { return ps[k].Result.G.EdgeCount() }

	// (a) is the densest; the basic algorithm thins it.
	if edges("b") >= edges("a") || edges("c") >= edges("a") {
		t.Errorf("basic algorithm must remove edges: a=%d b=%d c=%d", edges("a"), edges("b"), edges("c"))
	}
	// 5π/6 yields fewer edges than 2π/3 (weaker constraint).
	if edges("c") >= edges("b") {
		t.Errorf("α=5π/6 basic must be sparser than α=2π/3: c=%d b=%d", edges("c"), edges("b"))
	}
	// Shrink-back only removes.
	if edges("d") > edges("b") || edges("e") > edges("c") {
		t.Errorf("shrink-back must not add edges: b=%d d=%d / c=%d e=%d",
			edges("b"), edges("d"), edges("c"), edges("e"))
	}
	// Asymmetric removal strictly helps at 2π/3 on a dense instance.
	if edges("f") >= edges("d") {
		t.Errorf("asymmetric removal must remove edges: d=%d f=%d", edges("d"), edges("f"))
	}
	// All-ops panels are the sparsest of their α track.
	if edges("g") >= edges("e") {
		t.Errorf("pairwise removal must remove edges: e=%d g=%d", edges("e"), edges("g"))
	}
	if edges("h") >= edges("f") {
		t.Errorf("pairwise removal must remove edges: f=%d h=%d", edges("f"), edges("h"))
	}

	// Every panel preserves the connectivity of (a).
	for _, key := range []string{"b", "c", "d", "e", "f", "g", "h"} {
		if !ps[key].Result.PreservesConnectivity() {
			t.Errorf("panel %s broke connectivity", key)
		}
	}
}

// "CBTC allows nodes in the dense areas to automatically reduce their
// transmission radius": under the basic algorithm a visible fraction of
// nodes drops below max radius, and with all optimizations most nodes
// transmit at less than half of it.
func TestFigure6DenseAreaRadiusReduction(t *testing.T) {
	ps := panels(t)
	countBelow := func(key string, limit float64) int {
		n := 0
		for _, r := range ps[key].Result.Radii {
			if r < limit {
				n++
			}
		}
		return n
	}
	if got := countBelow("c", 450); got < 30 {
		t.Errorf("basic 5π/6: only %d/100 nodes below radius 450", got)
	}
	if got := countBelow("g", 250); got < 60 {
		t.Errorf("all-ops 5π/6: only %d/100 nodes below R/2", got)
	}
	// The all-ops panel has a strictly smaller radius profile.
	if ps["g"].Result.AvgRadius >= ps["c"].Result.AvgRadius {
		t.Errorf("all-ops radius %v must beat basic %v",
			ps["g"].Result.AvgRadius, ps["c"].Result.AvgRadius)
	}
}

func TestFigure6Deterministic(t *testing.T) {
	a, err := Figure6Panels(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure6Panels(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Result.G.Equal(b[i].Result.G) {
			t.Errorf("panel %s not deterministic", a[i].Key)
		}
	}
	c, err := Figure6Panels(8)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Result.G.Equal(c[0].Result.G) {
		t.Errorf("different seeds gave identical max-power graphs (suspicious)")
	}
}
