package cbtc

import (
	"errors"
	"math"
	"testing"

	"cbtc/internal/workload"
)

func paperConfig() Config { return Config{MaxRadius: workload.PaperRadius} }

func someNetwork(seed uint64, n int) []Point {
	return workload.Uniform(workload.Rand(seed), n, 1500, 1500)
}

func TestRunDefaults(t *testing.T) {
	nodes := someNetwork(1, 60)
	res, err := Run(nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.G.Len() != 60 || len(res.Radii) != 60 || len(res.Powers) != 60 {
		t.Fatalf("result shape wrong")
	}
	if !res.PreservesConnectivity() {
		t.Errorf("default α=5π/6 must preserve connectivity")
	}
	if !res.G.IsSubgraphOf(res.GR) {
		t.Errorf("G must be a subgraph of GR")
	}
	if res.AvgDegree <= 0 || res.AvgRadius <= 0 {
		t.Errorf("empty metrics: %+v", res)
	}
	for u, r := range res.Radii {
		if r > workload.PaperRadius*(1+1e-9) {
			t.Errorf("node %d radius %v exceeds R", u, r)
		}
		if res.Powers[u] <= 0 || res.Powers[u] > res.PowerCost(workload.PaperRadius)*(1+1e-9) {
			t.Errorf("node %d power %v out of range", u, res.Powers[u])
		}
	}
}

func TestRunConfigValidation(t *testing.T) {
	nodes := someNetwork(2, 10)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero radius", Config{}},
		{"negative radius", Config{MaxRadius: -5}},
		{"alpha too big", Config{MaxRadius: 500, Alpha: 7}},
		{"nan alpha", Config{MaxRadius: 500, Alpha: math.NaN()}},
		{"asym above 2π/3", Config{MaxRadius: 500, Alpha: AlphaConnectivity, AsymmetricRemoval: true}},
		{"bad exponent", Config{MaxRadius: 500, PathLossExponent: 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(nodes, tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("Run error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestAllOptimizations(t *testing.T) {
	cfg := paperConfig().AllOptimizations()
	if !cfg.ShrinkBack || !cfg.PairwiseRemoval {
		t.Errorf("AllOptimizations must enable op1 and op3")
	}
	if cfg.AsymmetricRemoval {
		t.Errorf("asym removal must stay off at the default α=5π/6")
	}
	cfg23 := Config{MaxRadius: 500, Alpha: AlphaAsymmetric}.AllOptimizations()
	if !cfg23.AsymmetricRemoval {
		t.Errorf("asym removal must be on at α=2π/3")
	}
	if _, err := Run(someNetwork(3, 40), cfg); err != nil {
		t.Errorf("all-optimizations run failed: %v", err)
	}
}

func TestOptimizationsReducePower(t *testing.T) {
	nodes := someNetwork(4, 80)
	basic, err := Run(nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(nodes, paperConfig().AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if full.AvgRadius >= basic.AvgRadius {
		t.Errorf("optimizations must reduce average radius: %v >= %v", full.AvgRadius, basic.AvgRadius)
	}
	if full.AvgDegree >= basic.AvgDegree {
		t.Errorf("optimizations must reduce average degree: %v >= %v", full.AvgDegree, basic.AvgDegree)
	}
	if !full.PreservesConnectivity() {
		t.Errorf("optimized topology must preserve connectivity")
	}
}

func TestMaxPowerTopology(t *testing.T) {
	nodes := someNetwork(5, 50)
	res, err := MaxPowerTopology(nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.G.Equal(res.GR) {
		t.Errorf("baseline topology must be GR itself")
	}
	if res.AvgRadius != workload.PaperRadius {
		t.Errorf("baseline radius = %v, want R", res.AvgRadius)
	}
	if res.BeaconPower(0) != res.PowerCost(workload.PaperRadius) {
		t.Errorf("baseline beacon power must be max power")
	}
	if res.BoundaryCount() != 0 {
		t.Errorf("baseline has no boundary concept")
	}
}

func TestSimulateMatchesRunShape(t *testing.T) {
	nodes := someNetwork(6, 35)
	ran, err := Run(nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(nodes, paperConfig(), SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.PreservesConnectivity() {
		t.Errorf("simulated topology must preserve connectivity")
	}
	// The protocol discovers a superset: every oracle edge is present.
	if !ran.G.IsSubgraphOf(sim.G) {
		t.Errorf("oracle topology must be contained in the simulated one")
	}
	for u := range nodes {
		if sim.Powers[u] < ran.Powers[u]-1e-6 {
			t.Errorf("node %d: simulated power below the oracle minimum", u)
		}
	}
}

func TestSimulateFineSchedule(t *testing.T) {
	nodes := someNetwork(7, 30)
	sim, err := Simulate(nodes, paperConfig(), SimOptions{Seed: 2, IncreaseFactor: 1.05})
	if err != nil {
		t.Fatal(err)
	}
	ran, err := Run(nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	for u := range nodes {
		if sim.Powers[u] > ran.Powers[u]*1.051 && sim.Powers[u] > sim.PowerCost(500)/1024*1.051 {
			t.Errorf("node %d: fine-schedule power %v too far above oracle %v",
				u, sim.Powers[u], ran.Powers[u])
		}
	}
}

func TestSimulateLossyStillConnected(t *testing.T) {
	nodes := someNetwork(8, 30)
	sim, err := Simulate(nodes, paperConfig(), SimOptions{
		Seed:     3,
		Jitter:   0.5,
		DupProb:  0.1,
		AoANoise: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.PreservesConnectivity() {
		t.Errorf("jitter/duplication/noise must not break connectivity")
	}
}

func TestSimulateBadIncrease(t *testing.T) {
	if _, err := Simulate(someNetwork(9, 5), paperConfig(), SimOptions{IncreaseFactor: 0.5}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v, want ErrBadConfig", err)
	}
}

func TestStretchMetrics(t *testing.T) {
	nodes := someNetwork(10, 50)
	res, err := Run(nodes, paperConfig().AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	ps, ds, hs := res.PowerStretch(), res.DistanceStretch(), res.HopStretch()
	if math.IsInf(ps, 1) || math.IsInf(ds, 1) || math.IsInf(hs, 1) {
		t.Fatalf("stretch infinite despite preserved connectivity: %v %v %v", ps, ds, hs)
	}
	for name, v := range map[string]float64{"power": ps, "distance": ds, "hop": hs} {
		if v < 1 {
			t.Errorf("%s stretch %v below 1", name, v)
		}
	}
	// Subgraph routes can't be shorter, and removing edges can't help
	// the baseline: identity case.
	self, err := MaxPowerTopology(nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := self.PowerStretch(); math.Abs(got-1) > 1e-9 {
		t.Errorf("baseline power stretch = %v, want 1", got)
	}
}

func TestRemovedRedundantReporting(t *testing.T) {
	nodes := someNetwork(11, 80)
	res, err := Run(nodes, paperConfig().AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	removed := res.RemovedRedundant()
	if len(removed) == 0 {
		t.Errorf("a dense network must yield removed redundant edges")
	}
	for _, e := range removed {
		if res.G.HasEdge(e.U, e.V) {
			t.Errorf("removed edge %v still present", e)
		}
	}
	basic, err := Run(nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(basic.RemovedRedundant()) != 0 {
		t.Errorf("basic run must not remove redundant edges")
	}
}

func TestBeaconPowerPublicAPI(t *testing.T) {
	nodes := someNetwork(12, 60)
	res, err := Run(nodes, paperConfig().AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	maxP := res.PowerCost(workload.PaperRadius)
	for u := range nodes {
		bp := res.BeaconPower(u)
		if bp <= 0 || bp > maxP*(1+1e-9) {
			t.Errorf("node %d beacon power %v out of (0, P]", u, bp)
		}
		if res.Boundary[u] && bp < maxP*(1-1e-9) {
			t.Errorf("boundary node %d must beacon at max power under shrink-back", u)
		}
	}
}

func TestPtHelper(t *testing.T) {
	p := Pt(3, 4)
	if p.X != 3 || p.Y != 4 {
		t.Errorf("Pt = %v", p)
	}
}

func TestSimulateWithAsymmetricRemoval(t *testing.T) {
	nodes := someNetwork(14, 30)
	cfg := Config{MaxRadius: 500, Alpha: AlphaAsymmetric, AsymmetricRemoval: true, ShrinkBack: true}
	sim, err := Simulate(nodes, cfg, SimOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.PreservesConnectivity() {
		t.Errorf("simulated asymmetric removal must preserve connectivity")
	}
	// The mutual graph is a subgraph of what the closure would give.
	closureCfg := cfg
	closureCfg.AsymmetricRemoval = false
	closure, err := Simulate(nodes, closureCfg, SimOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.G.IsSubgraphOf(closure.G) {
		t.Errorf("E⁻_α must be a subgraph of E_α")
	}
}
