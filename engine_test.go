package cbtc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cbtc/internal/workload"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		opts []Option
	}{
		{"no radius", nil},
		{"negative radius", []Option{WithMaxRadius(-5)}},
		{"alpha too big", []Option{WithMaxRadius(500), WithAlpha(7)}},
		{"asym above 2π/3", []Option{WithMaxRadius(500), WithAlpha(AlphaConnectivity), WithAsymmetricRemoval()}},
		{"bad exponent", []Option{WithMaxRadius(500), WithPathLoss(0.5)}},
		{"bad schedule factor", []Option{WithMaxRadius(500), WithShrinkBackSchedule(0.9)}},
		{"bad pairwise policy", []Option{WithMaxRadius(500), WithPairwiseRemoval(PairwisePolicy(42))}},
		{"negative workers", []Option{WithMaxRadius(500), WithWorkers(-1)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.opts...); !errors.Is(err, ErrBadConfig) {
				t.Errorf("New error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestNewDefaults(t *testing.T) {
	eng, err := New(WithMaxRadius(500))
	if err != nil {
		t.Fatal(err)
	}
	cfg := eng.Config()
	if cfg.Alpha != AlphaConnectivity {
		t.Errorf("default alpha = %v, want 5π/6", cfg.Alpha)
	}
	if cfg.PathLossExponent != 2 {
		t.Errorf("default exponent = %v, want 2", cfg.PathLossExponent)
	}
	if eng.Alpha() != cfg.Alpha {
		t.Errorf("Alpha() = %v disagrees with Config().Alpha = %v", eng.Alpha(), cfg.Alpha)
	}
}

// WithAllOptimizations must compose with WithAlpha in either order,
// because it is resolved at New time.
func TestWithAllOptimizationsComposes(t *testing.T) {
	before, err := New(WithAllOptimizations(), WithAlpha(AlphaAsymmetric), WithMaxRadius(500))
	if err != nil {
		t.Fatal(err)
	}
	after, err := New(WithMaxRadius(500), WithAlpha(AlphaAsymmetric), WithAllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []*Engine{before, after} {
		cfg := eng.Config()
		if !cfg.ShrinkBack || !cfg.PairwiseRemoval || !cfg.AsymmetricRemoval {
			t.Errorf("all-ops at 2π/3 must enable op1+op2+op3: %+v", cfg)
		}
	}
	// At the default 5π/6, asymmetric removal must stay off.
	def, err := New(WithMaxRadius(500), WithAllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if def.Config().AsymmetricRemoval {
		t.Errorf("all-ops at 5π/6 must not enable asymmetric removal")
	}
}

func TestEngineMatchesLegacyRun(t *testing.T) {
	nodes := someNetwork(31, 70)
	cfg := Config{MaxRadius: 500, Alpha: AlphaAsymmetric}.AllOptimizations()
	legacy, err := Run(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(
		WithMaxRadius(500),
		WithAlpha(AlphaAsymmetric),
		WithAllOptimizations(),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !res.G.Equal(legacy.G) {
		t.Errorf("engine topology differs from legacy Run")
	}
	for u := range nodes {
		if res.Powers[u] != legacy.Powers[u] || res.Radii[u] != legacy.Radii[u] {
			t.Errorf("node %d: engine powers/radii differ from legacy Run", u)
		}
	}
}

// The §3.3 policy must resolve identically through the deprecated flag,
// the explicit Config field, and the functional option — including
// through AllOptimizations, which used to be able to drop it.
func TestPairwisePolicyUnification(t *testing.T) {
	nodes := someNetwork(32, 80)

	viaFlag := Config{MaxRadius: 500, RemoveAllRedundant: true}.AllOptimizations()
	if got := viaFlag.PairwisePolicy; got != PairwiseRemoveAll {
		t.Errorf("AllOptimizations resolved policy = %v, want remove-all", got)
	}
	viaField := Config{MaxRadius: 500, PairwisePolicy: PairwiseRemoveAll}.AllOptimizations()

	resFlag, err := Run(nodes, viaFlag)
	if err != nil {
		t.Fatal(err)
	}
	resField, err := Run(nodes, viaField)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(
		WithMaxRadius(500),
		WithShrinkBack(),
		WithPairwiseRemoval(PairwiseRemoveAll),
	)
	if err != nil {
		t.Fatal(err)
	}
	resOpt, err := eng.Run(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !resFlag.G.Equal(resField.G) || !resFlag.G.Equal(resOpt.G) {
		t.Errorf("the three policy spellings produced different topologies")
	}
	// remove-all must delete at least as many edges as the default rule.
	def, err := Run(nodes, Config{MaxRadius: 500}.AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if len(resFlag.RemovedRedundant()) < len(def.RemovedRedundant()) {
		t.Errorf("remove-all removed fewer edges (%d) than length-filtered (%d)",
			len(resFlag.RemovedRedundant()), len(def.RemovedRedundant()))
	}
}

// A single Engine must serve concurrent Run/Simulate/Baseline calls;
// run under -race this is the concurrency-safety test.
func TestEngineConcurrentUse(t *testing.T) {
	eng, err := New(WithMaxRadius(500), WithAllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(3)
		go func() {
			defer wg.Done()
			_, err := eng.Run(ctx, someNetwork(uint64(40+g), 50))
			errs <- err
		}()
		go func() {
			defer wg.Done()
			_, err := eng.Simulate(ctx, someNetwork(uint64(50+g), 20), SimOptions{Seed: uint64(g)})
			errs <- err
		}()
		go func() {
			defer wg.Done()
			_, err := eng.Baseline(BaselineRNG, someNetwork(uint64(60+g), 30))
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunBatchMatchesSerial(t *testing.T) {
	eng, err := New(WithMaxRadius(500), WithAllOptimizations(), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	placements := make([][]Point, 8)
	for i := range placements {
		placements[i] = someNetwork(uint64(70+i), 40)
	}
	ctx := context.Background()
	batch, err := eng.RunBatch(ctx, placements)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(placements) {
		t.Fatalf("batch returned %d results, want %d", len(batch), len(placements))
	}
	for i, pos := range placements {
		want, err := eng.Run(ctx, pos)
		if err != nil {
			t.Fatal(err)
		}
		if !batch[i].G.Equal(want.G) {
			t.Errorf("placement %d: batch topology differs from serial Run", i)
		}
	}
}

func TestRunBatchEmpty(t *testing.T) {
	eng, err := New(WithMaxRadius(500))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunBatch(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty batch returned %d results", len(res))
	}
}

func TestRunBatchBadPlacement(t *testing.T) {
	eng, err := New(WithMaxRadius(500), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	nan := Pt(1, 1)
	nan.X = nan.X / 0 * 0 // NaN
	placements := [][]Point{someNetwork(1, 10), {nan}, someNetwork(2, 10)}
	if _, err := eng.RunBatch(context.Background(), placements); err == nil {
		t.Fatal("batch with an invalid placement must fail")
	}
}

func TestRunBatchPreCancelled(t *testing.T) {
	eng, err := New(WithMaxRadius(500), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	placements := [][]Point{someNetwork(1, 30), someNetwork(2, 30)}
	if _, err := eng.RunBatch(ctx, placements); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled batch error = %v, want context.Canceled", err)
	}
}

// Cancelling mid-run must abort the batch promptly and surface ctx.Err().
func TestRunBatchCancelledMidRun(t *testing.T) {
	eng, err := New(WithMaxRadius(500), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	// Enough work that the batch cannot finish before the cancellation
	// lands: 48 dense networks.
	placements := make([][]Point, 48)
	for i := range placements {
		placements[i] = workload.Uniform(workload.Rand(uint64(i)), 400, 1500, 1500)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := eng.RunBatch(ctx, placements)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled batch error = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("batch did not abort after cancellation (started %v ago)", time.Since(start))
	}
}

func TestEngineRunCancelled(t *testing.T) {
	eng, err := New(WithMaxRadius(500))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, someNetwork(1, 50)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Run error = %v, want context.Canceled", err)
	}
}

func TestEngineSimulateCancelled(t *testing.T) {
	eng, err := New(WithMaxRadius(500))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Simulate(ctx, someNetwork(2, 20), SimOptions{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Simulate error = %v, want context.Canceled", err)
	}
}

// RunTable1 must produce the same cells through the batched engines as
// the legacy serial implementation did; the fixture bands in
// table1_test.go check absolute calibration, this checks determinism.
func TestRunTable1Deterministic(t *testing.T) {
	a, err := RunTable1(Table1Params{Networks: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTable1Context(context.Background(), Table1Params{Networks: 3})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range a.Cells {
		if a.Cells[ci] != b.Cells[ci] {
			t.Errorf("column %d: cells differ across runs: %+v vs %+v",
				ci, a.Cells[ci], b.Cells[ci])
		}
	}
}
