package cbtc

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"cbtc/internal/workload"
)

// randomBatch draws a burst of events against the session's projected
// liveness: joins anywhere, leaves and moves on nodes live at the point
// their event applies.
func randomBatch(rng *rand.Rand, s *Session, size int, side float64) []Event {
	live := make([]int, 0, s.Len())
	for id := 0; id < s.Len(); id++ {
		if s.Alive(id) {
			live = append(live, id)
		}
	}
	var events []Event
	dead := map[int]bool{}
	for len(events) < size {
		pt := Pt(rng.Float64()*side, rng.Float64()*side)
		switch rng.IntN(5) {
		case 0:
			events = append(events, JoinEvent(pt))
		case 1:
			if len(live) > 1 {
				i := rng.IntN(len(live))
				if !dead[live[i]] {
					dead[live[i]] = true
					events = append(events, LeaveEvent(live[i]))
				}
			}
		default:
			i := rng.IntN(len(live))
			if !dead[live[i]] {
				events = append(events, MoveEvent(live[i], pt))
			}
		}
	}
	return events
}

// TestApplyBatchEqualsSequential proves the batched path's tentpole
// contract: for the same event burst, ApplyBatch leaves the session in
// exactly the state the one-by-one Join/Leave/Move path reaches —
// topology, radii, powers and ground-truth G_R, edge for edge — and
// both equal a fresh run over the final placement.
func TestApplyBatchEqualsSequential(t *testing.T) {
	const side = 1200.0
	for _, opts := range [][]Option{
		{WithMaxRadius(300)},
		{WithMaxRadius(300), WithShrinkBack()},
		{WithMaxRadius(250), WithAlpha(AlphaAsymmetric), WithShrinkBack(), WithAsymmetricRemoval()},
		{WithMaxRadius(300), WithAllOptimizations()}, // pairwise: full-rebuild fallback
	} {
		eng, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(42, 1))
		pos := workload.Uniform(workload.Rand(11), 60, side, side)
		pts := make([]Point, len(pos))
		copy(pts, pos)

		batched, err := eng.NewSession(context.Background(), pts)
		if err != nil {
			t.Fatal(err)
		}
		single, err := eng.NewSession(context.Background(), pts)
		if err != nil {
			t.Fatal(err)
		}

		for round := 0; round < 4; round++ {
			events := randomBatch(rng, batched, 3+rng.IntN(8), side)
			rep, err := batched.ApplyBatch(events)
			if err != nil {
				t.Fatal(err)
			}
			joins := 0
			for _, ev := range events {
				switch ev.Kind {
				case EventJoin:
					id, _ := single.Join(ev.Pos)
					if id != rep.JoinIDs[joins] {
						t.Fatalf("round %d: batch assigned id %d, sequential %d", round, rep.JoinIDs[joins], id)
					}
					joins++
				case EventLeave:
					if _, err := single.Leave(ev.ID); err != nil {
						t.Fatal(err)
					}
				case EventMove:
					if _, err := single.Move(ev.ID, ev.Pos); err != nil {
						t.Fatal(err)
					}
				}
			}
			if joins != len(rep.JoinIDs) {
				t.Fatalf("round %d: %d join ids reported for %d joins", round, len(rep.JoinIDs), joins)
			}

			bs, err := batched.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			ss, err := single.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if batched.Len() != single.Len() {
				t.Fatalf("round %d: node counts diverged: %d vs %d", round, batched.Len(), single.Len())
			}
			for u := 0; u < batched.Len(); u++ {
				if batched.Alive(u) != single.Alive(u) {
					t.Fatalf("round %d: liveness of %d diverged", round, u)
				}
				if bs.Radii[u] != ss.Radii[u] || bs.Powers[u] != ss.Powers[u] || bs.Boundary[u] != ss.Boundary[u] {
					t.Fatalf("round %d: node %d state diverged", round, u)
				}
				for v := 0; v < batched.Len(); v++ {
					if bs.G.HasEdge(u, v) != ss.G.HasEdge(u, v) {
						t.Fatalf("round %d: edge {%d,%d}: batch=%v sequential=%v",
							round, u, v, bs.G.HasEdge(u, v), ss.G.HasEdge(u, v))
					}
					if bs.GR.HasEdge(u, v) != ss.GR.HasEdge(u, v) {
						t.Fatalf("round %d: GR edge {%d,%d}: batch=%v sequential=%v",
							round, u, v, bs.GR.HasEdge(u, v), ss.GR.HasEdge(u, v))
					}
				}
			}
			// And both equal a fresh run over the live placement.
			requireSessionMatchesFreshRun(t, eng, batched)
		}
	}
}

// TestApplyBatchValidation pins the all-or-nothing contract: an invalid
// event anywhere in the batch leaves the session untouched.
func TestApplyBatchValidation(t *testing.T) {
	eng, err := New(WithMaxRadius(300))
	if err != nil {
		t.Fatal(err)
	}
	pos := workload.Uniform(workload.Rand(3), 20, 800, 800)
	s, err := eng.NewSession(context.Background(), pos)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := [][]Event{
		{MoveEvent(99, Pt(1, 1))},                             // unknown node
		{LeaveEvent(-1)},                                      // negative id
		{LeaveEvent(3), MoveEvent(3, Pt(1, 1))},               // move after leave in same batch
		{LeaveEvent(3), LeaveEvent(3)},                        // double leave
		{MoveEvent(0, Pt(1, 1)), {Kind: 0, ID: 1}},            // unknown kind
		{JoinEvent(Pt(5, 5)), MoveEvent(21, Pt(2, 2))},        // beyond the one projected join
		{JoinEvent(Pt(5, 5)), LeaveEvent(20), LeaveEvent(20)}, // projected join then double leave
	}
	for i, events := range cases {
		if _, err := s.ApplyBatch(events); !errors.Is(err, ErrBadEvent) {
			t.Fatalf("case %d: error = %v, want ErrBadEvent", i, err)
		}
	}
	after, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 20 || s.LiveCount() != 20 {
		t.Fatalf("failed batches mutated the session: len=%d live=%d", s.Len(), s.LiveCount())
	}
	if after.G.EdgeCount() != before.G.EdgeCount() || after.GR.EdgeCount() != before.GR.EdgeCount() {
		t.Fatal("failed batches mutated the topology")
	}

	// A batch referencing a node joined earlier in the same batch is
	// valid — including moving it.
	rep, err := s.ApplyBatch([]Event{
		JoinEvent(Pt(100, 100)),
		MoveEvent(20, Pt(150, 150)),
		LeaveEvent(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.JoinIDs) != 1 || rep.JoinIDs[0] != 20 {
		t.Fatalf("JoinIDs = %v, want [20]", rep.JoinIDs)
	}
	if s.Alive(20) {
		t.Fatal("node 20 should have departed within the batch")
	}
	requireSessionMatchesFreshRun(t, eng, s)

	// Empty batch: a no-op that keeps the snapshot cache warm.
	if _, err := s.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatchCorrelatedDrift exercises the mobility-trace shape the
// batch API exists for — a cluster of nodes drifting together — and
// verifies the repaired state equals a fresh run.
func TestApplyBatchCorrelatedDrift(t *testing.T) {
	eng, err := New(WithMaxRadius(250), WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	pos := workload.Uniform(workload.Rand(8), 150, 1500, 1500)
	s, err := eng.NewSession(context.Background(), pos)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	// Drift the 24 nodes nearest the area center by a small jitter, three
	// ticks in a row.
	center := Pt(750, 750)
	for tick := 0; tick < 3; tick++ {
		type cand struct {
			id int
			d  float64
		}
		var cands []cand
		for id := 0; id < s.Len(); id++ {
			if s.Alive(id) {
				cands = append(cands, cand{id, s.Position(id).Dist(center)})
			}
		}
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if cands[j].d < cands[i].d {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		var events []Event
		for _, c := range cands[:24] {
			p := s.Position(c.id)
			events = append(events, MoveEvent(c.id, Pt(p.X+rng.Float64()*60-30, p.Y+rng.Float64()*60-30)))
		}
		rep, err := s.ApplyBatch(events)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Recomputed) == 0 {
			t.Fatal("drift batch recomputed nothing")
		}
	}
	requireSessionMatchesFreshRun(t, eng, s)
}
