package cbtc

import (
	"math"
	"strings"
	"testing"
)

// table1Fixture runs a reduced but statistically stable reproduction of
// Table 1 (30 networks instead of 100) once per test binary.
var table1Fixture *Table1Result

func table1(t *testing.T) *Table1Result {
	t.Helper()
	if table1Fixture == nil {
		res, err := RunTable1(Table1Params{Networks: 30})
		if err != nil {
			t.Fatalf("RunTable1: %v", err)
		}
		table1Fixture = res
	}
	return table1Fixture
}

func table1Cell(t *testing.T, name string) (Table1Column, Table1Cell) {
	t.Helper()
	res := table1(t)
	for i, col := range res.Columns {
		if col.Name == name {
			return col, res.Cells[i]
		}
	}
	t.Fatalf("column %q not found", name)
	return Table1Column{}, Table1Cell{}
}

// Every measured cell must land within a generous band of the paper's
// published value: ±25% for degrees, ±10% for radii. (The observed
// deviations are far smaller; the bands guard against regressions, not
// noise.)
func TestTable1WithinPaperBands(t *testing.T) {
	res := table1(t)
	for i, col := range res.Columns {
		cell := res.Cells[i]
		if r := cell.AvgDegree / col.PaperDegree; r < 0.75 || r > 1.25 {
			t.Errorf("%s: degree %v vs paper %v (ratio %.2f)", col.Name, cell.AvgDegree, col.PaperDegree, r)
		}
		if r := cell.AvgRadius / col.PaperRadius; r < 0.90 || r > 1.10 {
			t.Errorf("%s: radius %v vs paper %v (ratio %.2f)", col.Name, cell.AvgRadius, col.PaperRadius, r)
		}
	}
}

// The qualitative claims of §5, which must hold regardless of absolute
// calibration.
func TestTable1Shape(t *testing.T) {
	_, basic56 := table1Cell(t, "basic α=5π/6")
	_, basic23 := table1Cell(t, "basic α=2π/3")
	_, op156 := table1Cell(t, "op1 α=5π/6")
	_, op123 := table1Cell(t, "op1 α=2π/3")
	_, op12 := table1Cell(t, "op1+op2 α=2π/3")
	_, all56 := table1Cell(t, "all α=5π/6")
	_, all23 := table1Cell(t, "all α=2π/3")
	_, maxp := table1Cell(t, "max power")

	// A larger α means weaker cone constraints: smaller degree/radius.
	if basic56.AvgDegree >= basic23.AvgDegree {
		t.Errorf("basic: degree(5π/6)=%v must be below degree(2π/3)=%v", basic56.AvgDegree, basic23.AvgDegree)
	}
	if basic56.AvgRadius >= basic23.AvgRadius {
		t.Errorf("basic: radius(5π/6)=%v must be below radius(2π/3)=%v", basic56.AvgRadius, basic23.AvgRadius)
	}
	// Shrink-back strictly helps.
	if op156.AvgDegree >= basic56.AvgDegree || op156.AvgRadius >= basic56.AvgRadius {
		t.Errorf("op1 must reduce both metrics at 5π/6")
	}
	if op123.AvgDegree >= basic23.AvgDegree || op123.AvgRadius >= basic23.AvgRadius {
		t.Errorf("op1 must reduce both metrics at 2π/3")
	}
	// Asymmetric edge removal cuts the 2π/3 radius sharply (the paper's
	// central trade-off discussion in §3.2/§5).
	if op12.AvgRadius >= 0.75*op123.AvgRadius {
		t.Errorf("op2 must cut the radius sharply: %v vs %v", op12.AvgRadius, op123.AvgRadius)
	}
	// With all optimizations the two angles converge.
	if math.Abs(all56.AvgDegree-all23.AvgDegree) > 0.5 {
		t.Errorf("all-ops degrees must converge: %v vs %v", all56.AvgDegree, all23.AvgDegree)
	}
	if math.Abs(all56.AvgRadius-all23.AvgRadius) > 25 {
		t.Errorf("all-ops radii must converge: %v vs %v", all56.AvgRadius, all23.AvgRadius)
	}
	// Headline claim: topology control cuts degree by >5x and radius by
	// ~3x versus max power (paper: 7x and >3x).
	if maxp.AvgDegree < 5*all56.AvgDegree {
		t.Errorf("degree reduction below 5x: %v vs %v", maxp.AvgDegree, all56.AvgDegree)
	}
	if maxp.AvgRadius < 2.5*all56.AvgRadius {
		t.Errorf("radius reduction below 2.5x: %v vs %v", maxp.AvgRadius, all56.AvgRadius)
	}
	// Max power column is exact.
	if maxp.AvgRadius != 500 {
		t.Errorf("max power radius = %v, want exactly 500", maxp.AvgRadius)
	}
}

// The §3.2 remark: pu,5π/6 < pu,2π/3 per node (the basic 5π/6 radius is
// smaller), yet after asymmetric removal the 2π/3 stack wins on radius —
// the trade-off the paper highlights. Also reproduces the in-text
// "301.2" figure: basic + op2 without shrink-back.
func TestTable1AsymTradeoffAndInTextRadius(t *testing.T) {
	// Build the in-text configuration directly: basic 2π/3 with
	// asymmetric removal only (no shrink-back).
	var radius, degree float64
	const networks = 30
	for seed := uint64(0); seed < networks; seed++ {
		nodes := someNetwork(seed, 100)
		cfg := Config{MaxRadius: 500, Alpha: AlphaAsymmetric, AsymmetricRemoval: true}
		res, err := Run(nodes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		radius += res.AvgRadius
		degree += res.AvgDegree
	}
	radius /= networks
	degree /= networks
	// Paper reports 301.2 for this configuration.
	if radius < 301.2*0.9 || radius > 301.2*1.1 {
		t.Errorf("basic+op2 radius = %v, paper says 301.2", radius)
	}
	_, basic56 := table1Cell(t, "basic α=5π/6")
	if radius >= basic56.AvgRadius {
		t.Errorf("op2 at 2π/3 must beat basic 5π/6 on radius: %v vs %v", radius, basic56.AvgRadius)
	}
}

func TestTable1Render(t *testing.T) {
	out := table1(t).Render()
	for _, want := range []string{"basic α=5π/6", "max power", "degree(paper)", "radius(ours)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 10 { // header + separator + 8 columns
		t.Errorf("render has %d lines, want 10:\n%s", lines, out)
	}
}

func TestTable1Defaults(t *testing.T) {
	p := Table1Params{}.withDefaults()
	if p.Networks != 100 || p.Nodes != 100 || p.Width != 1500 || p.Height != 1500 || p.MaxRadius != 500 {
		t.Errorf("defaults do not match the paper's setup: %+v", p)
	}
}
