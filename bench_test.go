package cbtc

// The benchmark harness maps every table and figure of the paper's
// evaluation (§5) to a regenerable workload:
//
//	BenchmarkTable1/...        — Table 1 columns (degree/radius per stack)
//	BenchmarkRunBatch/...      — serial vs parallel batch execution
//	BenchmarkFigure6           — the eight topology panels
//	BenchmarkExample21         — Figure 2 asymmetry construction
//	BenchmarkFigure5           — Theorem 2.4 disconnection construction
//	BenchmarkOracle/...        — scalability of the minimal-power executor
//	BenchmarkDistributed       — the full Hello/Ack protocol on netsim
//	BenchmarkPairwisePolicy/...— ablation X2: redundant-edge policies
//	BenchmarkPowerStretch      — extension X1: route-quality metric
//
// Absolute throughput is machine-dependent; the benchmarks exist so that
// `go test -bench=.` regenerates every experiment and verifies its
// invariant en passant (failed invariants abort the benchmark).

import (
	"bytes"
	"context"
	"math/rand/v2"
	"runtime"
	"slices"
	"testing"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/netsim"
	"cbtc/internal/proto"
	"cbtc/internal/radio"
	"cbtc/internal/workload"
)

// benchNetwork memoizes one paper-sized placement.
var benchNetwork = workload.PaperNetwork(1)

func benchModel() radio.Model { return radio.Default(workload.PaperRadius) }

func BenchmarkTable1(b *testing.B) {
	for _, col := range Table1Columns() {
		col := col
		b.Run(col.Name, func(b *testing.B) {
			m := benchModel()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if col.MaxPower {
					gr := core.MaxPowerGraph(benchNetwork, m)
					if graph.AvgDegree(gr) <= 0 {
						b.Fatal("empty baseline")
					}
					continue
				}
				exec, err := core.Run(benchNetwork, m, col.Alpha)
				if err != nil {
					b.Fatal(err)
				}
				topo, err := core.BuildTopology(exec, col.Opts)
				if err != nil {
					b.Fatal(err)
				}
				if s := topo.Summarize(); s.AvgDegree <= 0 {
					b.Fatal("empty topology")
				}
			}
		})
	}
}

// BenchmarkRunBatch measures the tentpole speedup of the Engine API:
// the same 16-network Table 1 workload pushed through Engine.RunBatch
// serially (one worker) and across GOMAXPROCS workers. The parallel/
// serial ratio is the recorded scaling factor; on a single-core machine
// the two converge.
func BenchmarkRunBatch(b *testing.B) {
	placements := make([][]Point, 16)
	for i := range placements {
		placements[i] = workload.Uniform(workload.Rand(uint64(i)), workload.PaperNodes, 1500, 1500)
	}
	ctx := context.Background()
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			eng, err := New(
				WithMaxRadius(workload.PaperRadius),
				WithAllOptimizations(),
				WithWorkers(tc.workers),
			)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := eng.RunBatch(ctx, placements)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(placements) {
					b.Fatal("missing results")
				}
			}
			workers := tc.workers
			if workers == 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			b.ReportMetric(float64(workers), "workers")
		})
	}
}

func BenchmarkTable1FullSweep(b *testing.B) {
	// One iteration = the entire Table 1 on a reduced network count;
	// regenerating the paper's full 100-network table is
	// `go run ./cmd/tablegen`.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunTable1(Table1Params{Networks: 3, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != 8 {
			b.Fatal("missing columns")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		panels, err := Figure6Panels(42)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 8 {
			b.Fatal("missing panels")
		}
	}
}

func BenchmarkExample21(b *testing.B) {
	m := benchModel()
	alpha := AlphaAsymmetric + 0.2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pos, err := workload.Example21(alpha, m.MaxRadius)
		if err != nil {
			b.Fatal(err)
		}
		exec, err := core.Run(pos, m, alpha)
		if err != nil {
			b.Fatal(err)
		}
		n := exec.Nalpha()
		if !n.HasArc(4, 0) || n.HasArc(0, 4) {
			b.Fatal("asymmetry lost")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	m := benchModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pos, err := workload.Figure5(0.1, m.MaxRadius)
		if err != nil {
			b.Fatal(err)
		}
		exec, err := core.Run(pos, m, AlphaConnectivity+0.1)
		if err != nil {
			b.Fatal(err)
		}
		if graph.IsConnected(exec.Nalpha().SymmetricClosure()) {
			b.Fatal("disconnection lost")
		}
	}
}

func BenchmarkOracle(b *testing.B) {
	m := benchModel()
	for _, n := range []int{50, 100, 300, 1000} {
		pos := workload.Uniform(workload.Rand(9), n, 1500, 1500)
		b.Run(benchName("n", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(pos, m, AlphaConnectivity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDistributed(b *testing.B) {
	m := benchModel()
	pos := workload.Uniform(workload.Rand(10), 50, 1500, 1500)
	cfg := proto.Config{Alpha: AlphaConnectivity}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := netsim.DefaultOptions(m)
		opts.Seed = uint64(i)
		if _, _, err := proto.RunCBTC(pos, opts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation X2: how many edges each pairwise policy removes and at what
// cost. Run with -bench PairwisePolicy -benchtime 1x to see the
// reported removal counts.
func BenchmarkPairwisePolicy(b *testing.B) {
	m := benchModel()
	exec, err := core.Run(benchNetwork, m, AlphaConnectivity)
	if err != nil {
		b.Fatal(err)
	}
	base, err := core.BuildTopology(exec, core.Options{ShrinkBack: true})
	if err != nil {
		b.Fatal(err)
	}
	gr := core.MaxPowerGraph(benchNetwork, m)
	policies := []core.PairwisePolicy{
		core.PairwiseLengthFiltered,
		core.PairwiseRemoveAll,
		core.PairwiseEitherEndpoint,
		core.PairwiseBothEndpoints,
	}
	for _, policy := range policies {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			b.ReportAllocs()
			var removed int
			for i := 0; i < b.N; i++ {
				g, rm := core.PairwiseRemoval(base.G, benchNetwork, policy)
				if !graph.SamePartition(gr, g) {
					b.Fatal("policy broke connectivity")
				}
				removed = len(rm)
			}
			b.ReportMetric(float64(removed), "edges-removed")
		})
	}
}

// Extension X1: empirical stretch factors of the final topology.
func BenchmarkPowerStretch(b *testing.B) {
	res, err := Run(benchNetwork, Config{MaxRadius: workload.PaperRadius}.AllOptimizations())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var stretch float64
	for i := 0; i < b.N; i++ {
		stretch = res.PowerStretch()
		if stretch < 1 {
			b.Fatal("stretch below 1")
		}
	}
	b.ReportMetric(stretch, "power-stretch")
}

// Ablation: shrink-back tag granularity (exact oracle tags vs protocol
// power levels), the calibration knob of RunTable1.
func BenchmarkShrinkGranularity(b *testing.B) {
	m := benchModel()
	exec, err := core.Run(benchNetwork, m, AlphaConnectivity)
	if err != nil {
		b.Fatal(err)
	}
	schedule, err := radio.Schedule(m.MaxPower()/1024, m.MaxPower(), radio.Doubling())
	if err != nil {
		b.Fatal(err)
	}
	variants := map[string]*core.Execution{
		"exact-tags":    exec,
		"doubling-tags": core.QuantizeTags(exec, schedule),
	}
	for name, e := range variants {
		e := e
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var deg float64
			for i := 0; i < b.N; i++ {
				topo, err := core.BuildTopology(e, core.Options{ShrinkBack: true})
				if err != nil {
					b.Fatal(err)
				}
				deg = topo.Summarize().AvgDegree
			}
			b.ReportMetric(deg, "avg-degree")
		})
	}
}

// Extension X4: the related-work baselines on the paper's workload.
func BenchmarkBaselines(b *testing.B) {
	cfg := Config{MaxRadius: workload.PaperRadius}
	for _, kind := range BaselineKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			var deg float64
			for i := 0; i < b.N; i++ {
				res, err := RunBaseline(kind, benchNetwork, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.PreservesConnectivity() {
					b.Fatal("baseline broke connectivity")
				}
				deg = res.AvgDegree
			}
			b.ReportMetric(deg, "avg-degree")
		})
	}
}

// Interference reduction (the motivation in §1 for fewer, shorter
// edges).
func BenchmarkInterference(b *testing.B) {
	res, err := Run(benchNetwork, Config{MaxRadius: workload.PaperRadius}.AllOptimizations())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var avg float64
	for i := 0; i < b.N; i++ {
		avg = res.AvgInterference()
	}
	b.ReportMetric(avg, "avg-interference")
}

// Extension X5: total transmission energy of the distributed growing
// phase, per cone angle (§5: the wider cone terminates sooner).
func BenchmarkGrowingPhaseEnergy(b *testing.B) {
	m := benchModel()
	pos := workload.Uniform(workload.Rand(5), 40, 1500, 1500)
	for _, tc := range []struct {
		name  string
		alpha float64
	}{
		{"alpha=5pi6", AlphaConnectivity},
		{"alpha=2pi3", AlphaAsymmetric},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var energy float64
			for i := 0; i < b.N; i++ {
				_, rt, err := proto.RunCBTC(pos, netsim.DefaultOptions(m), proto.Config{Alpha: tc.alpha})
				if err != nil {
					b.Fatal(err)
				}
				energy = rt.Sim.TotalEnergy()
			}
			b.ReportMetric(energy, "total-energy")
		})
	}
}

// BenchmarkLargeN is the scaling suite of the spatial-index tentpole:
// the large-n scenario family (uniform + clustered, constant paper
// density) pushed through the oracle, the distributed simulator, and
// Session repair, with naive full-scan variants as the reference. The
// CI bench job asserts the grid keeps its ≥5× lead over the naive oracle
// at n = 5000 (in practice the gap is 1–2 orders of magnitude). Naive
// variants only run at the sizes where a single iteration stays
// interactive; run with -benchtime=1x to regenerate the README table.
func BenchmarkLargeN(b *testing.B) {
	ctx := context.Background()
	for _, sc := range workload.LargeN() {
		sc := sc
		pos := sc.Placement(7)
		m := radio.Default(sc.Radius)

		b.Run(sc.Name+"/oracle/grid", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunContext(ctx, pos, m, AlphaConnectivity); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The PR 3 tentpole: the same oracle fanned across an 8-worker
		// pool. Output is byte-identical to /oracle/grid (asserted by
		// TestRunParallelDeterministic); BENCH_PR3.json gates the
		// parallel-vs-serial ratio at n=10000 on multi-core runners.
		b.Run(sc.Name+"/oracle/par8", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunParallel(ctx, pos, m, AlphaConnectivity, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
		if sc.N <= 5000 {
			b.Run(sc.Name+"/oracle/naive", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.RunNaive(ctx, pos, m, AlphaConnectivity); err != nil {
						b.Fatal(err)
					}
				}
			})
		}

		if sc.N <= 5000 {
			b.Run(sc.Name+"/sim/grid", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					opts := netsim.DefaultOptions(m)
					opts.Seed = uint64(i)
					if _, _, err := proto.RunCBTC(pos, opts, proto.Config{Alpha: AlphaConnectivity}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		if sc.N <= 1000 {
			b.Run(sc.Name+"/sim/naive", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					opts := netsim.DefaultOptions(m)
					opts.Seed = uint64(i)
					opts.NaiveDelivery = true
					if _, _, err := proto.RunCBTC(pos, opts, proto.Config{Alpha: AlphaConnectivity}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}

		b.Run(sc.Name+"/session-repair", func(b *testing.B) {
			eng, err := New(WithMaxRadius(sc.Radius))
			if err != nil {
				b.Fatal(err)
			}
			sess, err := eng.NewSession(ctx, pos)
			if err != nil {
				b.Fatal(err)
			}
			rng := workload.Rand(99)
			b.ReportAllocs()
			b.ResetTimer()
			var recomputed int
			for i := 0; i < b.N; i++ {
				id := rng.IntN(len(pos))
				if !sess.Alive(id) {
					continue
				}
				to := geom.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)
				rep, err := sess.Move(id, to)
				if err != nil {
					b.Fatal(err)
				}
				recomputed += len(rep.Recomputed)
			}
			b.ReportMetric(float64(recomputed)/float64(b.N), "recomputed/op")
		})

		// Incremental Snapshot: one Move then a fresh snapshot per
		// iteration. Before PR 3 every snapshot rebuilt the full topology
		// and ground-truth G_R; PR 3 cloned the maintained graphs; since
		// PR 4 the clones are copy-on-write — O(n) slice-header copies —
		// so the snapshot cost no longer scales with the edge count.
		b.Run(sc.Name+"/session-snapshot", func(b *testing.B) {
			eng, err := New(WithMaxRadius(sc.Radius), WithShrinkBack())
			if err != nil {
				b.Fatal(err)
			}
			sess, err := eng.NewSession(ctx, pos)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Snapshot(); err != nil {
				b.Fatal(err)
			}
			rng := workload.Rand(101)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := rng.IntN(len(pos))
				if !sess.Alive(id) {
					continue
				}
				to := geom.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)
				if _, err := sess.Move(id, to); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})

		// The full-rebuild fallback as the in-run reference: pairwise
		// removal is a global transformation, so these sessions rebuild
		// the whole topology and G_R per snapshot — the path every
		// snapshot took before PR 3. BENCH_PR4.json pins the COW
		// snapshot's lead over it at n=10000.
		b.Run(sc.Name+"/session-snapshot-full", func(b *testing.B) {
			eng, err := New(WithMaxRadius(sc.Radius), WithAllOptimizations())
			if err != nil {
				b.Fatal(err)
			}
			sess, err := eng.NewSession(ctx, pos)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Snapshot(); err != nil {
				b.Fatal(err)
			}
			rng := workload.Rand(101)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := rng.IntN(len(pos))
				if !sess.Alive(id) {
					continue
				}
				to := geom.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)
				if _, err := sess.Move(id, to); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})

		// The §4 batch shape: one mobility tick moves a cluster of 32
		// nearby nodes a small step. apply-batch repairs the burst with
		// one region-union recompute; sequential-moves is the same burst
		// through 32 single Move calls. BENCH_PR4.json pins the batch's
		// lead at n=10000.
		b.Run(sc.Name+"/apply-batch32", func(b *testing.B) {
			benchMobilityTick(b, sc, pos, func(sess *Session, events []Event) {
				if _, err := sess.ApplyBatch(events); err != nil {
					b.Fatal(err)
				}
			})
		})
		b.Run(sc.Name+"/sequential-moves32", func(b *testing.B) {
			benchMobilityTick(b, sc, pos, func(sess *Session, events []Event) {
				for _, ev := range events {
					if _, err := sess.Move(ev.ID, ev.Pos); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// benchMobilityTick drives one correlated-drift tick per iteration: the
// 32 live nodes nearest a rotating anchor node each jitter by ~R/8,
// applied through fn (batched or sequential). Both variants see
// identical event streams.
func benchMobilityTick(b *testing.B, sc workload.LargeNScenario, pos []Point, fn func(*Session, []Event)) {
	b.Helper()
	eng, err := New(WithMaxRadius(sc.Radius), WithShrinkBack())
	if err != nil {
		b.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), pos)
	if err != nil {
		b.Fatal(err)
	}
	rng := workload.Rand(103)
	const tickSize = 32
	type cand struct {
		id int
		d2 float64
	}
	cands := make([]cand, 0, len(pos))
	events := make([]Event, 0, tickSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Assemble the tick outside the timer: the cluster around a
		// random live anchor, each member jittered.
		var center Point
		for {
			id := rng.IntN(sess.Len())
			if sess.Alive(id) {
				center = sess.Position(id)
				break
			}
		}
		cands = cands[:0]
		for id := 0; id < sess.Len(); id++ {
			if sess.Alive(id) {
				cands = append(cands, cand{id, sess.Position(id).Dist2(center)})
			}
		}
		slices.SortFunc(cands, func(a, c cand) int {
			if a.d2 != c.d2 {
				if a.d2 < c.d2 {
					return -1
				}
				return 1
			}
			return a.id - c.id
		})
		n := tickSize
		if n > len(cands) {
			n = len(cands)
		}
		events = events[:0]
		jitter := sc.Radius / 8
		for _, c := range cands[:n] {
			p := sess.Position(c.id)
			events = append(events, MoveEvent(c.id, geom.Pt(
				p.X+rng.Float64()*2*jitter-jitter,
				p.Y+rng.Float64()*2*jitter-jitter,
			)))
		}
		b.StartTimer()
		fn(sess, events)
	}
	b.ReportMetric(float64(tickSize), "moves/tick")
}

// BenchmarkFleet measures the PR 5 tentpole: the same 16-network fleet
// (250 nodes each, constant paper density, standard drift/churn ticks)
// advanced one synchronized tick per iteration — tick generation,
// batched repair, per-tick observation and the aggregated FleetReport —
// serially and across the shard pool. The networks are independent, so
// the sharded fleet's per-network results are byte-identical to the
// serial ones (TestFleetWorkerCountInvariance); BENCH_PR5.json gates
// the serial/sharded ratio on multi-core runners.
func BenchmarkFleet(b *testing.B) {
	sc := workload.Fleet(16, 250, "uniform")
	placements := sc.Placements(7)
	ctx := context.Background()
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"sharded", 0},
	} {
		tc := tc
		b.Run(sc.Name+"/"+tc.name, func(b *testing.B) {
			eng, err := New(WithMaxRadius(sc.Radius), WithShrinkBack())
			if err != nil {
				b.Fatal(err)
			}
			fleet, err := eng.NewFleet(ctx, FleetConfig{Placements: placements, Seed: 11, Workers: tc.workers})
			if err != nil {
				b.Fatal(err)
			}
			tick := DriftTick(TickProfile{
				Moves:     sc.Moves,
				Jitter:    sc.Jitter,
				JoinProb:  sc.JoinProb,
				LeaveProb: sc.LeaveProb,
				Width:     sc.Side,
				Height:    sc.Side,
			})
			b.ReportAllocs()
			b.ResetTimer()
			var events int
			for i := 0; i < b.N; i++ {
				rep, err := fleet.Run(ctx, 1, tick)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Preserved != rep.Networks {
					b.Fatalf("tick %d: only %d/%d networks preserve connectivity", i, rep.Preserved, rep.Networks)
				}
				events = rep.Events
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
			workers := tc.workers
			if workers == 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			b.ReportMetric(float64(workers), "workers")
		})
	}
}

// BenchmarkFleetAsync measures the PR 7 tentpole on a straggler-skewed
// heterogeneous mix: 8 light networks (80 nodes, tick weight 4) plus
// one heavyweight straggler (2000 nodes, weight 1), all at paper density.
// Both arms apply the same per-member tick sequences; they differ only
// in scheduling:
//
//   - async: one fleet round per iteration on the work-stealing
//     scheduler — each fast member ticks 4×, the straggler once, and
//     nobody waits at a barrier.
//   - lockstep: weights flattened to 1 and four rounds driven with a
//     full drain between them — the retired PR 5 semantics, where every
//     round's fast ticks wait for a straggler tick.
//
// Per iteration the fast-member work is identical (32 ticks); the async
// arm pays the straggler once instead of four times. BENCH_PR7.json
// gates the lockstep/async ratio on ≥4-core runners.
func BenchmarkFleetAsync(b *testing.B) {
	mix := workload.StragglerMix(8, 80, 4, 2000)
	ctx := context.Background()
	ticks := make([]TickFunc, len(mix))
	for i, sz := range mix {
		moves := sz.N / 16
		ticks[i] = DriftTick(TickProfile{
			Moves:     moves,
			Jitter:    workload.PaperRadius / 8,
			JoinProb:  0.25,
			LeaveProb: 0.25,
			Width:     sz.Side,
			Height:    sz.Side,
		})
	}
	tick := func(net, tk int, rng *rand.Rand, s *Session) []Event {
		return ticks[net](net, tk, rng, s)
	}
	for _, tc := range []struct {
		name   string
		rounds int // rounds per iteration; 1 round of weight w ≡ w flattened rounds
		async  bool
	}{
		{"async", 1, true},
		{"lockstep", 4, false},
	} {
		tc := tc
		b.Run("straggler-m9/"+tc.name, func(b *testing.B) {
			eng, err := New(WithMaxRadius(workload.PaperRadius), WithShrinkBack())
			if err != nil {
				b.Fatal(err)
			}
			members := make([]MemberSpec, len(mix))
			for i, sz := range mix {
				members[i] = MemberSpec{Placement: workload.MemberPlacement(11, i, sz)}
				if tc.async {
					members[i].Ticks = sz.Ticks
				}
			}
			fleet, err := eng.NewFleet(ctx, FleetConfig{Members: members, Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < tc.rounds; r++ {
					if err := fleet.Advance(ctx, 1, tick); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			rep, err := fleet.Report()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Preserved != rep.Networks {
				b.Fatalf("only %d/%d networks preserve connectivity", rep.Preserved, rep.Networks)
			}
			b.ReportMetric(float64(rep.Events)/float64(b.N), "events/op")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
		})
	}
}

// BenchmarkGraphClone isolates the substrate win: a copy-on-write clone
// of the n=10k maximum-power graph (O(n) slice-header copies) against a
// fully materialized deep copy (O(E) arena copy) — the cheapest possible
// version of what the map-based representation paid on every snapshot.
// BENCH_PR4.json pins the COW/deep ratio.
func BenchmarkGraphClone(b *testing.B) {
	var sc workload.LargeNScenario
	for _, s := range workload.LargeN() {
		if s.N == 10000 && s.Kind == "uniform" {
			sc = s
		}
	}
	if sc.N == 0 {
		b.Fatal("missing uniform n=10000 scenario")
	}
	pos := sc.Placement(7)
	gr := core.MaxPowerGraph(pos, radio.Default(sc.Radius))
	b.Run("cow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if gr.Clone().Len() != sc.N {
				b.Fatal("bad clone")
			}
		}
	})
	b.Run("deep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if gr.CloneDeep().Len() != sc.N {
				b.Fatal("bad clone")
			}
		}
	})
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkCheckpoint measures the durability layer at n=10000 uniform:
// /checkpoint serializes a live session (lock-light COW export plus the
// bulk arena encode) into a reusable buffer, /restore decodes and
// revalidates it back into a live session (including the spatial-index
// and reconfigurator rebuild). Fleet checkpoints are m independent
// session bodies behind one header, so the session-level numbers are
// the per-network cost. BENCH_PR6.json gates both absolutes and their
// allocation ceilings.
func BenchmarkCheckpoint(b *testing.B) {
	var sc workload.LargeNScenario
	for _, s := range workload.LargeN() {
		if s.N == 10000 && s.Kind == "uniform" {
			sc = s
		}
	}
	ctx := context.Background()
	eng, err := New(WithMaxRadius(sc.Radius), WithShrinkBack())
	if err != nil {
		b.Fatal(err)
	}
	sess, err := eng.NewSession(ctx, sc.Placement(7))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		b.Fatal(err)
	}
	raw := bytes.Clone(buf.Bytes())

	b.Run(sc.Name+"/checkpoint", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := sess.Checkpoint(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "checkpoint-bytes")
	})
	b.Run(sc.Name+"/restore", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			restored, err := eng.RestoreSession(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			if restored.Len() != sess.Len() {
				b.Fatal("restored session truncated")
			}
		}
	})
}

// BenchmarkObserve is the PR 9 tentpole gate: per-tick metric reads off
// the session's maintained aggregates (live count, edge count, dynamic
// connectivity, cached radii) against the reference full scan — a
// component BFS plus a fresh per-node radius fold. Both run on the same
// dirtied incremental session, and TestSessionObserveLockstep proves
// they return bitwise-identical TickStats; BENCH_PR9.json pins the
// maintained path's ≥5× lead at n = 10000.
func BenchmarkObserve(b *testing.B) {
	ctx := context.Background()
	for _, sc := range workload.LargeN() {
		if sc.Kind != "uniform" {
			continue
		}
		sc := sc
		pos := sc.Placement(7)
		eng, err := New(WithMaxRadius(sc.Radius), WithShrinkBack())
		if err != nil {
			b.Fatal(err)
		}
		sess, err := eng.NewSession(ctx, pos)
		if err != nil {
			b.Fatal(err)
		}
		// Dirty the session so the maintained state is mid-run, not
		// construction-fresh.
		rng := workload.Rand(3)
		for k := 0; k < 32; k++ {
			id := rng.IntN(len(pos))
			if !sess.Alive(id) {
				continue
			}
			to := geom.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)
			if _, err := sess.Move(id, to); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(sc.Name+"/incremental", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Observe(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sc.Name+"/reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess.mu.Lock()
				ts := observeGraph(sess.g, sess.alive, sess.pos, sess.nodes)
				sess.mu.Unlock()
				if ts.Live == 0 {
					b.Fatal("empty observe")
				}
			}
		})
	}
}

// BenchmarkLifetime is the PR 10 energy-workload suite on a
// paper-density 1000-node session. /drain-observe is the raw per-tick
// battery cost: one event-free Tick paying the Θ(live) drain pass plus
// the maintained O(changed) observation. /lifetime-tick is the full
// LifetimeTick driver a fleet runs — drift events, repair, drain,
// depletion scan — per tick. Capacities are sized so no node dies
// during timing: the live set stays constant and per-op figures are
// comparable across b.N.
func BenchmarkLifetime(b *testing.B) {
	ctx := context.Background()
	const n = 1000
	side := workload.LargeNSide(n)
	pos := workload.Uniform(workload.Rand(7), n, side, side)
	newBatterySession := func(b *testing.B) *Session {
		b.Helper()
		eng, err := New(WithMaxRadius(workload.PaperRadius), WithShrinkBack(), WithBattery(1e18, 1))
		if err != nil {
			b.Fatal(err)
		}
		sess, err := eng.NewSession(ctx, pos)
		if err != nil {
			b.Fatal(err)
		}
		return sess
	}

	b.Run("uniform-1000/drain-observe", func(b *testing.B) {
		sess := newBatterySession(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, ts, err := sess.Tick(nil)
			if err != nil {
				b.Fatal(err)
			}
			if ts.Residual <= 0 || ts.Live != n {
				b.Fatalf("tick %d: live=%d residual=%v; capacity too small for the run", i, ts.Live, ts.Residual)
			}
		}
	})

	b.Run("uniform-1000/lifetime-tick", func(b *testing.B) {
		sess := newBatterySession(b)
		tick := LifetimeTick(TickProfile{
			Moves: 8, Jitter: workload.PaperRadius / 8,
			Width: side, Height: side,
		})
		rng := workload.Rand(19)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			events := tick(0, i, rng, sess)
			if _, _, err := sess.Tick(events); err != nil {
				b.Fatal(err)
			}
		}
	})
}
